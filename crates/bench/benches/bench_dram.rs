//! Harness for the DRAM-aware memory tier.
//!
//! Two invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_dram` doubles as the CI gate:
//!
//! 1. a memory-aware hardware DSE (ranking candidates on the roofline
//!    `max(compute, dram)` totals) beats a compute-only search on a
//!    bandwidth-throttled accelerator — the compute-only objective cannot
//!    see SRAM capacity at all, so it keeps the cheapest (smallest) SRAM
//!    and pays the refetch bill at deployment;
//! 2. the analytical DRAM-cycle model stays within the paper's 6 % bound
//!    of the cycle-level BCE engine's streamed traffic (compressed weight
//!    stream + broadcast activations + write-back) on a memory-bound layer.

use bitwave::context::ExperimentContext;
use bitwave::pipeline::Pipeline;
use bitwave_accel::model::{evaluate_layer, evaluate_network};
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_accel::{EnergyModel, LayerSparsityProfile};
use bitwave_bench::{print_header, write_bench_json};
use bitwave_core::group::GroupSize;
use bitwave_dataflow::{DramSpec, DramTraffic, LayerFootprint, MemoryHierarchy};
use bitwave_dnn::layer::LayerSpec;
use bitwave_dnn::models::resnet18;
use bitwave_sim::engine::{BitwaveEngine, EngineConfig};
use bitwave_tensor::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;

const SAMPLE_CAP: usize = 4_000;
/// The throttled deployment interface of gate 1, in bits per compute cycle.
const THROTTLED_BANDWIDTH_BITS: usize = 32;
/// The SRAM capacity axis of gate 1 (applied to both operand SRAMs), in KiB.
const SRAM_AXIS_KB: [usize; 5] = [32, 64, 128, 256, 512];

/// The `BENCH_dram.json` trajectory record, matching the
/// `BENCH_dse.json`/`BENCH_sweep.json` convention.
#[derive(Serialize)]
struct DramBenchReport {
    sample_cap: usize,
    throttled_bandwidth_bits: usize,
    blind_sram_kb: usize,
    aware_sram_kb: usize,
    blind_total_cycles: f64,
    aware_total_cycles: f64,
    aware_over_blind_gain: f64,
    aware_memory_bound_layers: usize,
    model_dram_cycles: f64,
    engine_dram_cycles: f64,
    dram_deviation: f64,
    deviation_gate: f64,
}

fn ctx() -> ExperimentContext {
    ExperimentContext::default().with_sample_cap(SAMPLE_CAP)
}

fn memory(sram_kb: usize) -> MemoryHierarchy {
    MemoryHierarchy {
        weight_sram_bytes: sram_kb * 1024,
        activation_sram_bytes: sram_kb * 1024,
        dram_word_bits: 64,
        sram_word_bits: 64,
    }
}

fn resnet_profiles(
    context: &ExperimentContext,
    accel: &AcceleratorSpec,
) -> Vec<LayerSparsityProfile> {
    let net = resnet18();
    let weights = context.weights(&net);
    let prepared = Pipeline::new(context.clone())
        .prepare_with_weights(&net, &weights)
        .expect("prepared layers");
    prepared
        .iter()
        .map(|layer| *layer.analysis.profile_for(accel))
        .collect()
}

/// Gate 1: on a bandwidth-throttled deployment, ranking the SRAM axis by the
/// DRAM-aware roofline totals must strictly beat a compute-only ranking
/// (which sees identical compute cycles for every capacity and keeps the
/// cheapest).  Returns `(blind_kb, aware_kb, blind_total, aware_total,
/// aware_memory_bound_layers)`.
fn assert_memory_aware_dse_beats_compute_only(
    context: &ExperimentContext,
    profiles: &[LayerSparsityProfile],
) -> (usize, usize, f64, f64, usize) {
    print_header(
        "dram_dse",
        "memory-aware vs compute-only SRAM sizing on a throttled interface \
         (gate: aware total < blind total)",
    );
    let net = resnet18();
    let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    spec.dram = DramSpec::constrained(THROTTLED_BANDWIDTH_BITS);

    let mut blind: Option<(usize, f64, f64)> = None; // (kb, compute metric, deployed total)
    let mut aware: Option<(usize, f64, usize)> = None; // (kb, total, memory-bound layers)
    for sram_kb in SRAM_AXIS_KB {
        let result = evaluate_network(&spec, &net, profiles, &memory(sram_kb), &context.energy)
            .expect("throttled evaluation");
        let compute_metric: f64 = result.layers.iter().map(|l| l.compute_cycles).sum();
        let bound = result
            .layers
            .iter()
            .filter(|l| l.boundedness.is_some_and(|b| b.memory_bound))
            .count();
        println!(
            "sram {sram_kb:>4} KiB: compute {compute_metric:.4e}  total {:.4e}  \
             memory-bound layers {bound}/{}",
            result.total_cycles,
            result.layers.len(),
        );
        // The compute-only objective: strictly better or keep the first
        // (cheapest) candidate — capacity is invisible to it.
        if blind.is_none_or(|(_, best, _)| compute_metric < best) {
            blind = Some((sram_kb, compute_metric, result.total_cycles));
        }
        if aware.is_none_or(|(_, best, _)| result.total_cycles < best) {
            aware = Some((sram_kb, result.total_cycles, bound));
        }
    }
    let (blind_kb, _, blind_total) = blind.expect("non-empty axis");
    let (aware_kb, aware_total, aware_bound) = aware.expect("non-empty axis");
    println!(
        "compute-only pick: {blind_kb} KiB (deployed total {blind_total:.4e})   \
         memory-aware pick: {aware_kb} KiB (total {aware_total:.4e})   gain: {:.3}x",
        blind_total / aware_total,
    );
    assert!(
        aware_total < blind_total,
        "memory-aware DSE total {aware_total:.4e} must beat the compute-only \
         pick's deployed total {blind_total:.4e}"
    );
    (blind_kb, aware_kb, blind_total, aware_total, aware_bound)
}

/// Gate 2: the analytical DRAM side of the roofline must stay within the
/// paper's 6 % validation bound of the cycle-level engine's streamed traffic
/// on a memory-bound lowered linear layer.  Returns
/// `(model_cycles, engine_cycles, deviation)`.
fn assert_model_matches_engine_dram() -> (f64, f64, f64) {
    const GATE: f64 = 0.06;
    print_header(
        "dram_bce",
        "analytical vs cycle-level-engine DRAM cycles on a memory-bound layer \
         (gate: deviation < 6%)",
    );
    // A lowered linear layer small enough that every operand fits its SRAM
    // (fetch counts of exactly 1 on both sides of the comparison).
    let (m, k, c) = (32usize, 256usize, 1024usize);
    let layer = LayerSpec::linear("fc", c, k, m, 0.5);
    let weights = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.05 }, 11)
            .generate(Shape::d2(k, c)),
        8,
    )
    .expect("weights quantize");
    let input = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Laplacian { scale: 1.0 }, 12)
            .generate(Shape::d2(m, c)),
        8,
    )
    .expect("input quantizes");

    // Analytical side: the engine groups 8 lanes, so the profile (and its
    // BCS compression ratio) is computed at the same group size.
    let profile =
        LayerSparsityProfile::from_weights(&weights, 0.5, GroupSize::from_len(8)).expect("profile");
    let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    spec.dram = DramSpec::constrained(8);
    let result = evaluate_layer(
        &spec,
        &layer,
        &profile,
        &MemoryHierarchy::bitwave_default(),
        &EnergyModel::finfet_16nm(),
    )
    .expect("layer evaluates");
    let boundedness = result
        .boundedness
        .expect("constrained tier reports boundedness");
    assert!(
        boundedness.memory_bound,
        "the validation layer must be memory bound at 8 bits/cycle"
    );
    assert_eq!(boundedness.weight_fetches, 1);
    assert_eq!(boundedness.act_fetches, 1);

    // Engine side: the BCE array streams the BCS-compressed weight tensor
    // once (payload + index bits), broadcasts the input activations and
    // writes every output back.
    let (_, stats) = BitwaveEngine::new(EngineConfig::su1())
        .run_matmul(&input, &weights)
        .expect("engine run");
    let engine_bytes = (stats.weight_payload_bits + stats.weight_index_bits) as f64 / 8.0
        + (m * c) as f64
        + stats.outputs_written as f64;
    let engine_cycles = spec.dram.cycles_for_bytes(engine_bytes);
    let model_cycles = boundedness.dram_cycles;
    let deviation = (model_cycles - engine_cycles).abs() / engine_cycles;
    println!(
        "model: {model_cycles:.1} cycles ({:.0} bytes)   engine: {engine_cycles:.1} cycles \
         ({engine_bytes:.0} bytes)   deviation: {:.2}% (gate: <{:.0}%)",
        boundedness.dram_bytes,
        deviation * 100.0,
        GATE * 100.0,
    );
    assert!(
        deviation < GATE,
        "modeled DRAM cycles deviate {:.2}% from the cycle-level engine (gate: <6%)",
        deviation * 100.0
    );
    (model_cycles, engine_cycles, deviation)
}

fn bench(c: &mut Criterion) {
    let context = ctx();
    let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    let profiles = resnet_profiles(&context, &accel);

    let (blind_kb, aware_kb, blind_total, aware_total, aware_bound) =
        assert_memory_aware_dse_beats_compute_only(&context, &profiles);
    let (model_dram_cycles, engine_dram_cycles, dram_deviation) =
        assert_model_matches_engine_dram();
    write_bench_json(
        "BENCH_dram.json",
        &DramBenchReport {
            sample_cap: SAMPLE_CAP,
            throttled_bandwidth_bits: THROTTLED_BANDWIDTH_BITS,
            blind_sram_kb: blind_kb,
            aware_sram_kb: aware_kb,
            blind_total_cycles: blind_total,
            aware_total_cycles: aware_total,
            aware_over_blind_gain: blind_total / aware_total.max(f64::MIN_POSITIVE),
            aware_memory_bound_layers: aware_bound,
            model_dram_cycles,
            engine_dram_cycles,
            dram_deviation,
            deviation_gate: 0.06,
        },
    );

    // Steady-state criterion loops.
    let net = resnet18();
    let mut throttled = accel.clone();
    throttled.dram = DramSpec::constrained(THROTTLED_BANDWIDTH_BITS);
    c.bench_function("dram/evaluate_resnet18_throttled", |b| {
        b.iter(|| {
            black_box(
                evaluate_network(
                    black_box(&throttled),
                    black_box(&net),
                    black_box(&profiles),
                    &context.memory,
                    &context.energy,
                )
                .expect("evaluation"),
            )
        })
    });

    let footprints: Vec<LayerFootprint> = net.layers.iter().map(LayerFootprint::of_layer).collect();
    let tight = memory(64);
    c.bench_function("dram/traffic_analyze_cheapest_resnet18", |b| {
        b.iter(|| {
            footprints
                .iter()
                .map(|fp| DramTraffic::analyze_cheapest(black_box(fp), &tight).total_bytes())
                .sum::<u64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
