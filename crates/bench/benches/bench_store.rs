//! Gates for the tiered persistent store (`bitwave-store`): a warm restart
//! must amortize the pipeline, and the memory tier must amortize the disk.
//!
//! Two invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_store` doubles as the CI gate:
//!
//! 1. restarting the evaluation service against the same `--store-root` and
//!    re-issuing an evaluation is ≥ 10× faster than the cold run — the
//!    response replays from the disk tier (`X-Bitwave-Cache: disk`) with
//!    byte-identical JSON and zero weight regenerations;
//! 2. a memory-tier hit is ≥ 10× faster than a disk-tier hit on a
//!    report-sized entry — promoting an entry into memory must matter.

use bitwave::digest::Digest;
use bitwave_bench::{print_header, write_bench_json};
use bitwave_serve::client::Client;
use bitwave_serve::server::{start, ServeConfig, ServerHandle};
use bitwave_store::{StoreConfig, StoreOutcome, StringCodec, TieredStore};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The `BENCH_store.json` trajectory record, matching the
/// `BENCH_dse.json`/`BENCH_dram.json` convention.
#[derive(Serialize)]
struct StoreBenchReport {
    warm_restart_cold_ms: f64,
    warm_restart_warm_ms: f64,
    warm_restart_speedup: f64,
    warm_restart_gate: f64,
    disk_hit_us: f64,
    memory_hit_us: f64,
    tier_speedup: f64,
    tier_speedup_gate: f64,
}

const EVALUATE_BODY: &str = r#"{"model":"resnet18","accelerator":"bitwave","sample_cap":8000}"#;

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("bitwave-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn persistent_server(root: &std::path::Path) -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        store_root: Some(root.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("persistent server starts")
}

/// Gate 1: warm-restart evaluate ≥ 10× faster than cold, byte-identical,
/// served from the disk tier.
fn assert_warm_restart_gate(root: &std::path::Path) -> (f64, f64, f64) {
    const TARGET: f64 = 10.0;
    print_header(
        "store_warm_restart",
        "evaluate after a service restart replays from disk (>=10x gate)",
    );

    let first = persistent_server(root);
    let mut client = Client::new(first.local_addr());
    let t0 = Instant::now();
    let cold = client
        .post_json("/v1/evaluate", EVALUATE_BODY)
        .expect("cold evaluate");
    let cold_elapsed = t0.elapsed();
    assert_eq!(cold.status, 200, "cold: {:?}", cold.text());
    assert_eq!(cold.header("x-bitwave-cache"), Some("miss"));
    let cold_body = cold.body.clone();
    drop(client);
    first.shutdown();

    // A fresh process over the same root: nothing in memory, everything on
    // disk.
    let second = persistent_server(root);
    let mut client = Client::new(second.local_addr());
    let t1 = Instant::now();
    let warm = client
        .post_json("/v1/evaluate", EVALUATE_BODY)
        .expect("warm evaluate");
    let warm_elapsed = t1.elapsed();
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.header("x-bitwave-cache"),
        Some("disk"),
        "the restarted service must serve the evaluation from its disk tier"
    );
    assert_eq!(warm.body, cold_body, "disk replay must be byte-identical");
    assert_eq!(
        second.state().store.generations(),
        0,
        "a disk replay must not regenerate weights"
    );
    drop(client);
    second.shutdown();

    let ratio = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "cold evaluate: {cold_elapsed:?}   warm-restart evaluate: {warm_elapsed:?}   \
         ratio: {ratio:.1}x   (target: >={TARGET}x)"
    );
    assert!(
        ratio >= TARGET,
        "warm-restart evaluate ({warm_elapsed:?}) must be >={TARGET}x faster than cold ({cold_elapsed:?})"
    );
    (
        cold_elapsed.as_secs_f64() * 1e3,
        warm_elapsed.as_secs_f64() * 1e3,
        ratio,
    )
}

/// Gate 2: memory-tier hit ≥ 10× faster than disk-tier hit on a
/// report-sized entry.
#[allow(clippy::type_complexity)]
fn assert_memory_vs_disk_gate(
    root: &std::path::Path,
) -> (TieredStore<StringCodec>, Digest, (f64, f64, f64)) {
    const TARGET: f64 = 10.0;
    const ROUNDS: u32 = 200;
    print_header(
        "store_tier_latency",
        "memory-tier hit vs disk-tier hit on a ~256 KiB entry (>=10x gate)",
    );
    let config = StoreConfig::default().with_root(root).with_mem_entries(16);
    let store = TieredStore::<StringCodec>::new("bench", &config).expect("store opens");
    let key = Digest::of_bytes(b"tier-latency-entry");
    // A report-sized payload (~256 KiB of JSON-looking text).
    let payload: String = "{\"layer\":\"conv1\",\"edp\":1234.5678}".repeat(8192);
    store
        .get_or_compute(key, || Ok::<_, String>(payload.clone()), |e| e)
        .expect("seed entry");

    // Disk path: drop the memory tier before every read.
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        store.clear_memory();
        let (body, outcome) = store
            .get_or_compute(key, || panic!("on disk"), |e: String| e)
            .expect("disk hit");
        assert_eq!(outcome, StoreOutcome::Disk);
        black_box(body.len());
    }
    let disk_per_hit = t0.elapsed() / ROUNDS;

    // Memory path: the entry stays promoted.
    let t1 = Instant::now();
    for _ in 0..ROUNDS {
        let (body, outcome) = store
            .get_or_compute(key, || panic!("in memory"), |e: String| e)
            .expect("memory hit");
        assert_eq!(outcome, StoreOutcome::Hit);
        black_box(body.len());
    }
    let mem_per_hit = t1.elapsed() / ROUNDS;

    let ratio = disk_per_hit.as_secs_f64() / mem_per_hit.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "disk hit: {disk_per_hit:?}   memory hit: {mem_per_hit:?}   ratio: {ratio:.1}x   \
         (target: >={TARGET}x; disk hits {} mem hits {})",
        store.stats().disk_hits(),
        store.stats().hits(),
    );
    assert!(
        ratio >= TARGET,
        "memory hits ({mem_per_hit:?}) must be >={TARGET}x faster than disk hits ({disk_per_hit:?})"
    );
    (
        store,
        key,
        (
            disk_per_hit.as_secs_f64() * 1e6,
            mem_per_hit.as_secs_f64() * 1e6,
            ratio,
        ),
    )
}

fn bench(c: &mut Criterion) {
    let restart_root = temp_root("restart");
    let (warm_restart_cold_ms, warm_restart_warm_ms, warm_restart_speedup) =
        assert_warm_restart_gate(&restart_root);
    let _ = std::fs::remove_dir_all(&restart_root);

    let tier_root = temp_root("tiers");
    let (store, key, (disk_hit_us, memory_hit_us, tier_speedup)) =
        assert_memory_vs_disk_gate(&tier_root);
    write_bench_json(
        "BENCH_store.json",
        &StoreBenchReport {
            warm_restart_cold_ms,
            warm_restart_warm_ms,
            warm_restart_speedup,
            warm_restart_gate: 10.0,
            disk_hit_us,
            memory_hit_us,
            tier_speedup,
            tier_speedup_gate: 10.0,
        },
    );

    c.bench_function("store/memory_hit", |b| {
        b.iter(|| {
            let (body, _) = store
                .get_or_compute(black_box(key), || panic!("hit"), |e: String| e)
                .expect("hit");
            black_box(body.len())
        })
    });
    c.bench_function("store/disk_hit", |b| {
        b.iter(|| {
            store.clear_memory();
            let (body, _) = store
                .get_or_compute(black_box(key), || panic!("disk"), |e: String| e)
                .expect("disk");
            black_box(body.len())
        })
    });

    drop(store);
    let _ = std::fs::remove_dir_all(&tier_root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
