//! Regenerates the end-to-end evaluation figures: Fig. 13 (speedup
//! breakdown), Fig. 14 (speedup vs SotA), Fig. 15 (energy), Fig. 16 (energy
//! breakdown) and Fig. 17 (energy efficiency), then benchmarks the
//! sparsity-aware network performance model.

use bitwave::context::ExperimentContext;
use bitwave::experiments::evaluation::{
    fig13_speedup_breakdown, fig14_15_17_sota_comparison, fig16_energy_breakdown,
};
use bitwave_accel::model::evaluate_network;
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_bench::{bench_context, print_header};
use bitwave_dnn::models::resnet18;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_figures(ctx: &ExperimentContext) {
    print_header(
        "fig13_speedup_breakdown",
        "Fig. 13 (Dense -> +DF -> +SM -> +BF)",
    );
    for row in fig13_speedup_breakdown(ctx).expect("fig13 runs") {
        println!(
            "{:<12} {:<10} {:>6.2}x",
            row.network, row.step, row.speedup_vs_dense
        );
    }

    print_header(
        "fig14_speedup_sota / fig15_energy / fig17_efficiency",
        "Figs. 14, 15 and 17 (SotA comparison, normalised as in the paper)",
    );
    println!(
        "{:<12} {:<18} {:>13} {:>15} {:>17}",
        "network", "accelerator", "speedup/SCNN", "energy/BitWave", "efficiency/SCNN"
    );
    for row in fig14_15_17_sota_comparison(ctx).expect("fig14-17 run") {
        println!(
            "{:<12} {:<18} {:>12.2}x {:>14.2}x {:>16.2}x",
            row.network,
            row.accelerator,
            row.speedup_vs_scnn,
            row.energy_vs_bitwave,
            row.efficiency_vs_scnn
        );
    }

    print_header(
        "fig16_energy_breakdown",
        "Fig. 16 (BitWave energy incl. DRAM)",
    );
    for row in fig16_energy_breakdown(ctx).expect("fig16 runs") {
        println!(
            "{:<12} compute {:>5.1}%  sram {:>5.1}%  reg {:>5.1}%  dram {:>5.1}%  total {:.3} mJ",
            row.network,
            100.0 * row.compute_fraction,
            100.0 * row.sram_fraction,
            100.0 * row.register_fraction,
            100.0 * row.dram_fraction,
            row.total_mj
        );
    }
}

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    print_figures(&ctx);

    // Benchmark the analytical model itself on one network (profiles are
    // precomputed outside the timed region).
    let net = resnet18();
    let weights = ctx.weights(&net);
    let profiles = ctx.profiles(&net, &weights).expect("profiles computed");
    let spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    c.bench_function("kernel/evaluate_resnet18_on_bitwave_model", |b| {
        b.iter(|| {
            black_box(evaluate_network(
                black_box(&spec),
                black_box(&net),
                black_box(&profiles),
                &ctx.memory,
                &ctx.energy,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
