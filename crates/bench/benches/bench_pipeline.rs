//! Benchmarks the unified layer pipeline: sequential vs rayon-parallel
//! full-model runs on ResNet18 (small sample cap), plus the per-stage cost
//! of one layer job.
//!
//! Three invariants are **asserted** (not just timed) before the criterion
//! loops, so `cargo bench --bench bench_pipeline` doubles as the CI gate:
//!
//! 1. the parallel run is bit-identical to the sequential run;
//! 2. **zero weight-tensor deep copies** happen during job planning and
//!    parallel dispatch (the `Arc`-backed `WeightHandle` path);
//! 3. a `fig06_tradeoff`-style 7-round sweep through the single-analysis
//!    pipeline is ≥ 1.5× faster than an emulation of the pre-refactor
//!    per-layer cost (deep-copied jobs, per-stage re-analysis, eager
//!    ZRE/CSR codec passes);
//!
//! plus the existing >1.5x sequential-vs-parallel scaling target on 4+ core
//! machines.

use bitwave::context::ExperimentContext;
use bitwave::pipeline::Pipeline;
use bitwave_accel::model::evaluate_layer;
use bitwave_accel::LayerSparsityProfile;
use bitwave_bench::{print_header, write_bench_json};
use bitwave_core::compress::BcsCodec;
use bitwave_core::group::extract_groups;
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dnn::models::resnet18;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::copy_metrics::CopyCounter;
use bitwave_tensor::QuantTensor;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The `BENCH_pipeline.json` trajectory record, matching the
/// `BENCH_dse.json`/`BENCH_dram.json` convention.
#[derive(Serialize)]
struct PipelineBenchReport {
    cores: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    parallel_speedup: f64,
    parallel_speedup_gate: f64,
    weight_copies: u64,
    shared_analysis_ms: f64,
    legacy_emulation_ms: f64,
    shared_analysis_speedup: f64,
    shared_analysis_gate: f64,
}

fn pipeline_context() -> ExperimentContext {
    // Small cap: the bench compares orchestration overhead and scaling, not
    // the full-size analysis cost.
    ExperimentContext::default().with_sample_cap(8_000)
}

fn print_scaling_summary(pipeline: &Pipeline) -> (usize, f64, f64, f64) {
    let net = resnet18();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    print_header(
        "pipeline_scaling",
        "sequential vs rayon-parallel full-model pipeline (ResNet18)",
    );

    let sequential = pipeline.run_model(&net).expect("sequential run");
    let parallel = pipeline.run_model_parallel(&net).expect("parallel run");
    assert_eq!(sequential, parallel, "parallel run must be bit-identical");

    // Best of three rounds per mode (after the warm-up above), so one noisy
    // scheduling interval on a shared CI runner cannot fail the gate.
    let best_of = |runs: &mut dyn FnMut() -> std::time::Duration| {
        (0..3).map(|_| runs()).min().expect("three rounds")
    };
    let t_seq = best_of(&mut || {
        let t0 = Instant::now();
        black_box(pipeline.run_model(&net).expect("sequential run"));
        t0.elapsed()
    });
    let t_par = best_of(&mut || {
        let t0 = Instant::now();
        black_box(pipeline.run_model_parallel(&net).expect("parallel run"));
        t0.elapsed()
    });

    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "cores: {cores}   sequential: {:.1} ms   parallel: {:.1} ms   speedup: {speedup:.2}x",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
    );
    println!(
        "layers: {}   (target: >1.5x speedup at 4+ cores)",
        parallel.layers.len()
    );
    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "parallel pipeline speedup {speedup:.2}x below the 1.5x target on {cores} cores"
        );
    }
    (
        cores,
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        speedup,
    )
}

/// Gate 2: the zero-copy invariant.  Planning jobs from a weight set and
/// dispatching the whole model across all cores must perform **zero**
/// `QuantTensor` deep copies — weights travel by `Arc` handle only.
fn assert_zero_copy_dispatch(pipeline: &Pipeline) -> u64 {
    let net = resnet18();
    let weights = pipeline.context().weights(&net);
    print_header(
        "pipeline_zero_copy",
        "zero-copy job planning + parallel dispatch (copy-count gate)",
    );
    let counter = CopyCounter::snapshot();
    let jobs = pipeline.jobs_with_weights(&net, &weights).expect("plan");
    let report = pipeline
        .run_model_weights_parallel(&net, &weights)
        .expect("parallel run");
    let copies = counter.delta();
    println!(
        "jobs planned: {}   layers simulated: {}   weight-tensor deep copies: {copies}",
        jobs.len(),
        report.layers.len(),
    );
    assert_eq!(
        copies, 0,
        "job planning/parallel dispatch must not deep-copy weight tensors"
    );
    copies
}

/// Emulates the pre-refactor per-layer pipeline cost for one full-model
/// pass: deep-copy the weights at planning time (the old owned `LayerJob`),
/// analyse statistics and BCS in the compress stage, then rebuild the whole
/// sparsity profile — statistics, groups and BCS again, plus the eager
/// ZRE/CSR codec passes — in the bit-flip stage, and finally map + simulate.
///
/// The network spec and weight set come from the caller, exactly like the
/// new-path timing: only the per-layer pipeline work is measured, never
/// weight generation.
fn legacy_model_pass(
    pipeline: &Pipeline,
    net: &bitwave_dnn::models::NetworkSpec,
    weights: &bitwave_dnn::weights::NetworkWeights,
) -> f64 {
    let ctx = pipeline.context();
    let memory = ctx.memory;
    let energy = ctx.energy;
    let mut checksum = 0.0f64;
    for layer in &net.layers {
        let tensor: QuantTensor = weights.layer(&layer.name).expect("layer weights").clone();
        // Old compress stage: stats + BCS, each extracting its own groups.
        let stats = LayerSparsityStats::analyze(&tensor, ctx.group_size).expect("stats");
        let groups = extract_groups(&tensor, ctx.group_size).expect("groups");
        let compressed = BcsCodec::new(ctx.group_size, Encoding::SignMagnitude)
            .compress_groups(groups.iter(), tensor.data().len());
        black_box((&stats, compressed.compression_ratio_with_index()));
        // Old bit-flip stage: rebuild the full profile from scratch (stats,
        // groups and BCS a second time, ZRE/CSR eagerly).
        let profile = LayerSparsityProfile::from_weights(
            &tensor,
            layer.expected_activation_sparsity(),
            ctx.group_size,
        )
        .expect("profile");
        let result = evaluate_layer(pipeline.accelerator(), layer, &profile, &memory, &energy)
            .expect("mapping");
        checksum += result.total_cycles;
    }
    checksum
}

/// Gate 3: the single-analysis pipeline must beat the pre-refactor cost
/// emulation by ≥ 1.5× on a `fig06_tradeoff`-style sweep (7 whole-model
/// passes over one generated weight set).
fn assert_shared_analysis_speedup(pipeline: &Pipeline) -> (f64, f64, f64) {
    const ROUNDS: usize = 7;
    const TARGET: f64 = 1.5;
    let net = resnet18();
    let weights = pipeline.context().weights(&net);
    print_header(
        "pipeline_shared_analysis",
        "single-pass analysis vs pre-refactor per-stage re-analysis (>=1.5x gate)",
    );

    // Warm-up + numerical agreement: both paths model the same machine.
    let new_total = pipeline
        .run_model_weights(&net, &weights)
        .expect("pipeline run")
        .total_cycles;
    let legacy_total = legacy_model_pass(pipeline, &net, &weights);
    assert!(
        (new_total - legacy_total).abs() <= 1e-6 * legacy_total,
        "shared-analysis pipeline diverged from the legacy emulation: {new_total} vs {legacy_total}"
    );

    // Best of three sweeps per path, so one noisy scheduling interval on a
    // shared CI runner cannot fail the gate.
    let best_of = |runs: &mut dyn FnMut()| -> std::time::Duration {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                runs();
                t0.elapsed()
            })
            .min()
            .expect("three rounds")
    };
    let t_new = best_of(&mut || {
        for _ in 0..ROUNDS {
            black_box(pipeline.run_model_weights(&net, &weights).expect("run"));
        }
    });
    let t_legacy = best_of(&mut || {
        for _ in 0..ROUNDS {
            black_box(legacy_model_pass(pipeline, &net, &weights));
        }
    });
    let speedup = t_legacy.as_secs_f64() / t_new.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "{ROUNDS}-round sweep   shared-analysis: {:.1} ms   legacy emulation: {:.1} ms   speedup: {speedup:.2}x   (target: >={TARGET}x)",
        t_new.as_secs_f64() * 1e3,
        t_legacy.as_secs_f64() * 1e3,
    );
    assert!(
        speedup >= TARGET,
        "shared-analysis speedup {speedup:.2}x below the {TARGET}x gate"
    );
    (
        t_new.as_secs_f64() * 1e3,
        t_legacy.as_secs_f64() * 1e3,
        speedup,
    )
}

fn bench(c: &mut Criterion) {
    let pipeline = Pipeline::new(pipeline_context()).with_default_bitflip(&resnet18());
    let (cores, sequential_ms, parallel_ms, parallel_speedup) = print_scaling_summary(&pipeline);
    // The copy gate runs on the Bit-Flip pipeline: the flip path constructs
    // fresh tensors but must never *copy* one.
    let weight_copies = assert_zero_copy_dispatch(&pipeline);
    let lossless = Pipeline::new(pipeline_context());
    let (shared_analysis_ms, legacy_emulation_ms, shared_analysis_speedup) =
        assert_shared_analysis_speedup(&lossless);
    write_bench_json(
        "BENCH_pipeline.json",
        &PipelineBenchReport {
            cores,
            sequential_ms,
            parallel_ms,
            parallel_speedup,
            parallel_speedup_gate: 1.5,
            weight_copies,
            shared_analysis_ms,
            legacy_emulation_ms,
            shared_analysis_speedup,
            shared_analysis_gate: 1.5,
        },
    );

    let net = resnet18();
    c.bench_function("pipeline/run_model_sequential_resnet18", |b| {
        b.iter(|| black_box(pipeline.run_model(black_box(&net)).expect("run")))
    });
    c.bench_function("pipeline/run_model_parallel_resnet18", |b| {
        b.iter(|| black_box(pipeline.run_model_parallel(black_box(&net)).expect("run")))
    });

    // Single-job cost: the unit of work the parallel scheduler distributes.
    let job = pipeline
        .jobs(&net)
        .expect("jobs planned")
        .into_iter()
        .last()
        .expect("at least one job");
    c.bench_function("pipeline/run_single_layer_job", |b| {
        b.iter(|| black_box(pipeline.run_job(black_box(job.clone())).expect("job runs")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
