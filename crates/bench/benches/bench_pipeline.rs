//! Benchmarks the unified layer pipeline: sequential vs rayon-parallel
//! full-model runs on ResNet18 (small sample cap), plus the per-stage cost
//! of one layer job.
//!
//! The parallel run must be bit-identical to the sequential run; this bench
//! asserts that before timing, then reports the observed speedup so the
//! >1.5x-at-4-cores target is visible in CI logs.

use bitwave::context::ExperimentContext;
use bitwave::pipeline::Pipeline;
use bitwave_bench::print_header;
use bitwave_dnn::models::resnet18;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn pipeline_context() -> ExperimentContext {
    // Small cap: the bench compares orchestration overhead and scaling, not
    // the full-size analysis cost.
    ExperimentContext::default().with_sample_cap(8_000)
}

fn print_scaling_summary(pipeline: &Pipeline) {
    let net = resnet18();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    print_header(
        "pipeline_scaling",
        "sequential vs rayon-parallel full-model pipeline (ResNet18)",
    );

    let sequential = pipeline.run_model(&net).expect("sequential run");
    let parallel = pipeline.run_model_parallel(&net).expect("parallel run");
    assert_eq!(sequential, parallel, "parallel run must be bit-identical");

    // Best of three rounds per mode (after the warm-up above), so one noisy
    // scheduling interval on a shared CI runner cannot fail the gate.
    let best_of = |runs: &mut dyn FnMut() -> std::time::Duration| {
        (0..3).map(|_| runs()).min().expect("three rounds")
    };
    let t_seq = best_of(&mut || {
        let t0 = Instant::now();
        black_box(pipeline.run_model(&net).expect("sequential run"));
        t0.elapsed()
    });
    let t_par = best_of(&mut || {
        let t0 = Instant::now();
        black_box(pipeline.run_model_parallel(&net).expect("parallel run"));
        t0.elapsed()
    });

    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "cores: {cores}   sequential: {:.1} ms   parallel: {:.1} ms   speedup: {speedup:.2}x",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
    );
    println!(
        "layers: {}   (target: >1.5x speedup at 4+ cores)",
        parallel.layers.len()
    );
    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "parallel pipeline speedup {speedup:.2}x below the 1.5x target on {cores} cores"
        );
    }
}

fn bench(c: &mut Criterion) {
    let pipeline = Pipeline::new(pipeline_context()).with_default_bitflip(&resnet18());
    print_scaling_summary(&pipeline);

    let net = resnet18();
    c.bench_function("pipeline/run_model_sequential_resnet18", |b| {
        b.iter(|| black_box(pipeline.run_model(black_box(&net)).expect("run")))
    });
    c.bench_function("pipeline/run_model_parallel_resnet18", |b| {
        b.iter(|| black_box(pipeline.run_model_parallel(black_box(&net)).expect("run")))
    });

    // Single-job cost: the unit of work the parallel scheduler distributes.
    let job = pipeline
        .jobs(&net)
        .expect("jobs planned")
        .into_iter()
        .last()
        .expect("at least one job");
    c.bench_function("pipeline/run_single_layer_job", |b| {
        b.iter(|| black_box(pipeline.run_job(black_box(job.clone())).expect("job runs")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
