//! Regenerates Fig. 6: the layer-wise Bit-Flip sensitivity curves (a–d) and
//! the compression-ratio vs quality trade-offs with Pareto fronts (e–h),
//! then benchmarks the Bit-Flip kernel itself.

use bitwave::experiments::bitflip::{fig06_layer_sensitivity, fig06_pareto, fig06_tradeoff};
use bitwave_bench::{bench_context, print_header};
use bitwave_core::bitflip::flip_slice;
use bitwave_core::group::GroupSize;
use bitwave_dnn::models::all_networks;
use bitwave_dnn::weights::generate_layer_sample;
use bitwave_tensor::bits::Encoding;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_figures() {
    let ctx = bench_context();

    print_header(
        "fig06_bitflip_sensitivity",
        "Fig. 6(a-d) layer-wise flipping sensitivity",
    );
    for net in all_networks() {
        // A representative probe set: the most sensitive early layer, a middle
        // layer and the heaviest layer of each network.
        let mut probes: Vec<String> = vec![net.layers.first().unwrap().name.clone()];
        probes.push(net.layers[net.layers.len() / 2].name.clone());
        probes.push(net.weight_heavy_layers(0.2)[0].name.clone());
        probes.dedup();
        for row in fig06_layer_sensitivity(&ctx, &net, &probes, 7).expect("fig06 runs") {
            if row.zero_columns % 2 == 0 {
                println!(
                    "{:<12} {:<34} z={}  quality {:>7.2}  (drop {:>5.2})",
                    row.network, row.layer, row.zero_columns, row.quality, row.quality_drop
                );
            }
        }
    }

    print_header(
        "fig06_pareto",
        "Fig. 6(e-h) CR vs accuracy: PTQ vs SM vs SM+Bit-Flip",
    );
    for net in all_networks() {
        let rows = fig06_tradeoff(&ctx, &net).expect("fig06 tradeoff runs");
        for row in &rows {
            println!(
                "{:<12} {:<16} {:<26} CR {:>5.2}x  quality {:>7.2}",
                row.network, row.method, row.configuration, row.compression_ratio, row.quality
            );
        }
        let front = fig06_pareto(&rows);
        println!("{:<12} Pareto-optimal points: {}", net.name, front.len());
    }
}

fn bench(c: &mut Criterion) {
    print_figures();

    let net = bitwave_dnn::models::resnet18();
    let layer = net.layer("layer4.1.conv1").unwrap();
    let weights = generate_layer_sample(layer, 7, 40_000);

    c.bench_function("kernel/bitflip_40k_weights_z5_g16", |b| {
        b.iter(|| {
            black_box(flip_slice(
                black_box(weights.data()),
                GroupSize::G16,
                5,
                Encoding::SignMagnitude,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
