//! Regenerates Fig. 9 (PE utilisation across layer shapes), Table I (SU
//! bandwidths) and Fig. 12 (workload summary), then benchmarks the per-layer
//! mapping search.

use bitwave::experiments::hardware::{
    fig09_pe_utilization, fig12_workload_summary, table01_su_bandwidth,
};
use bitwave_bench::{bench_context, print_header};
use bitwave_dataflow::mapping::map_network;
use bitwave_dataflow::SuSet;
use bitwave_dnn::models::mobilenet_v2;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_figures() {
    let ctx = bench_context();

    print_header(
        "table01_su_bandwidth",
        "Table I (BitWave spatial unrollings)",
    );
    for row in table01_su_bandwidth() {
        println!(
            "{:<4} [Cu={:<2} OXu={:<2} Ku={:<3} Gu={:<2}]  W BW {:>5} b/cyc  Act BW {:>5} b/cyc",
            row.su,
            row.unrolling[0],
            row.unrolling[1],
            row.unrolling[2],
            row.unrolling[3],
            row.weight_bw_bits,
            row.activation_bw_bits
        );
    }

    print_header(
        "fig09_pe_utilization",
        "Fig. 9 (fixed-SU utilisation across layer shapes)",
    );
    for row in fig09_pe_utilization(&ctx) {
        println!(
            "{:<34} {:<10} {:>5} lanes   {:>5.1}%",
            row.case,
            row.su,
            row.array_lanes,
            100.0 * row.utilization
        );
    }

    print_header("fig12_benchmark_configs", "Fig. 12 (workload summary)");
    for row in fig12_workload_summary() {
        println!(
            "{:<12} {:?}  {:>3} layers  {:>6.2} GFLOPs  {:>7.2} M params  baseline quality {:>6.2}",
            row.name, row.task, row.layers, row.gflops, row.params_millions, row.baseline_quality
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figures();

    let net = mobilenet_v2();
    let set = SuSet::bitwave();
    c.bench_function("kernel/map_mobilenet_v2_onto_bitwave_sus", |b| {
        b.iter(|| black_box(map_network(black_box(&net.layers), black_box(&set))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
