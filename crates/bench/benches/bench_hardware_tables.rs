//! Regenerates Table III (SotA specification comparison), Table IV (PE-type
//! area/power) and Fig. 18 (BitWave area/power breakdown), plus the
//! analytical-model-vs-simulator validation of Section V-B, then benchmarks
//! the validation workload.

use bitwave::experiments::evaluation::validation_model_vs_simulator;
use bitwave::experiments::hardware::{
    fig18_area_power_breakdown, table03_sota_comparison, table04_pe_cost,
};
use bitwave_bench::{bench_context, print_header};
use bitwave_sim::engine::{BitwaveEngine, EngineConfig};
use bitwave_tensor::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_tables() {
    print_header("table03_sota_comparison", "Table III (normalised to 28 nm)");
    for row in table03_sota_comparison() {
        println!(
            "{:<10} {:>4.0} nm  area {:>8} mm²  power {:>9} mW  eff {:>7} TOPS/W  (28nm area {:>7}, 28nm GOPS/W/mm² {:>8})",
            row.design,
            row.technology_nm,
            row.area_mm2.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
            row.power_mw.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            row.tops_per_w.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
            row.normalized_area_mm2(28.0).map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
            row.normalized_area_efficiency(28.0).map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into()),
        );
    }

    print_header(
        "table04_pe_cost",
        "Table IV (bit-parallel vs bit-serial vs bit-column-serial PE)",
    );
    for row in table04_pe_cost() {
        println!(
            "{:<36} power {:>9.3e} mW  area {:>8.3} um²",
            row.pe_type, row.power_mw, row.area_um2
        );
    }

    print_header(
        "fig18_area_power_breakdown",
        "Fig. 18 (BitWave area and power breakdown)",
    );
    for row in fig18_area_power_breakdown() {
        println!(
            "{:<28} area {:>6.3} mm² ({:>5.1}%)   power {:>6.2} mW ({:>5.1}%)",
            row.module,
            row.area_mm2,
            100.0 * row.area_fraction,
            row.power_mw,
            100.0 * row.power_fraction
        );
    }

    print_header(
        "validation_model_vs_sim",
        "Section V-B (analytical model vs cycle-level simulator)",
    );
    let report = validation_model_vs_simulator(&bench_context()).expect("validation runs");
    println!(
        "simulated {:>8} cycles   modelled {:>10.1} cycles   deviation {:>5.2}%  (paper bound 6%)",
        report.simulated_cycles,
        report.model_cycles,
        100.0 * report.deviation
    );
    println!(
        "simulated CR {:.2}x   modelled CR {:.2}x",
        report.simulated_compression_ratio, report.model_compression_ratio
    );
}

fn bench(c: &mut Criterion) {
    print_tables();

    let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.02 }, 11);
    let weights = quantize_per_tensor(&gen.generate(Shape::d2(64, 256)), 8).unwrap();
    let acts = quantize_per_tensor(
        &ActivationGenerator::new(bitwave_tensor::synth::ActivationKind::Relu { std: 1.0 }, 12)
            .generate(Shape::d2(16, 256)),
        8,
    )
    .unwrap();
    let engine = BitwaveEngine::new(EngineConfig::su1());
    c.bench_function("kernel/cycle_sim_matmul_16x64x256", |b| {
        b.iter(|| {
            black_box(
                engine
                    .run_matmul(black_box(&acts), black_box(&weights))
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
