//! Regenerates Fig. 1 (sparsity survey), Fig. 4 (representation study) and
//! Fig. 5 (compression-ratio sweep), then benchmarks the underlying sparsity
//! analysis and BCS compression kernels.

use bitwave::experiments::sparsity::{
    fig01_sparsity_survey, fig04_bcs_representation, fig05_compression_ratio,
};
use bitwave_bench::{bench_context, print_header};
use bitwave_core::compress::{BcsCodec, WeightCodec};
use bitwave_core::group::GroupSize;
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dnn::models::resnet18;
use bitwave_dnn::weights::generate_layer_sample;
use bitwave_tensor::bits::Encoding;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_figures() {
    let ctx = bench_context();

    print_header(
        "fig01_sparsity_survey",
        "Fig. 1 (value vs bit sparsity, SR ratios)",
    );
    for row in fig01_sparsity_survey(&ctx).expect("fig01 runs") {
        println!(
            "{:<12} value {:>5.1}%  bit(2C) {:>5.1}%  bit(SM) {:>5.1}%  SR(2C) {:>5.2}x  SR(SM) {:>5.2}x",
            row.network,
            100.0 * row.value_sparsity,
            100.0 * row.bit_sparsity_twos_complement,
            100.0 * row.bit_sparsity_sign_magnitude,
            row.speedup_ratio_twos_complement,
            row.speedup_ratio_sign_magnitude
        );
    }

    print_header(
        "fig04_bcs_representation",
        "Fig. 4 (2's complement vs sign-magnitude, G=4)",
    );
    let r = fig04_bcs_representation(&ctx).expect("fig04 runs");
    println!(
        "{}: value sparsity {:.1}%, zero columns 2C {:.1}%, SM {:.1}%  ({:.2}x improvement)",
        r.layer,
        100.0 * r.value_sparsity,
        100.0 * r.column_sparsity_twos_complement,
        100.0 * r.column_sparsity_sign_magnitude,
        r.sign_magnitude_improvement
    );

    print_header(
        "fig05_compression_ratio",
        "Fig. 5 (BCS vs ZRE vs CSR on ResNet18 late layers)",
    );
    for row in fig05_compression_ratio(&ctx).expect("fig05 runs") {
        println!(
            "{:<4} {:<6} ideal {:>5.2}x  with index {:>5.2}x",
            row.codec,
            row.group_size.map(|g| format!("G={g}")).unwrap_or_default(),
            row.cr_ideal,
            row.cr_with_index
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figures();

    let net = resnet18();
    let layer = net.layer("layer4.0.conv2").unwrap();
    let weights = generate_layer_sample(layer, 42, 60_000);
    let codec = BcsCodec::new(GroupSize::G16, Encoding::SignMagnitude);

    c.bench_function("kernel/bcs_compress_60k_weights", |b| {
        b.iter(|| black_box(codec.compress(black_box(weights.data()))))
    });
    c.bench_function("kernel/layer_sparsity_stats_60k_weights", |b| {
        b.iter(|| {
            black_box(LayerSparsityStats::analyze(
                black_box(&weights),
                GroupSize::G16,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
