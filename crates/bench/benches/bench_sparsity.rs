//! Regenerates Fig. 1 (sparsity survey), Fig. 4 (representation study) and
//! Fig. 5 (compression-ratio sweep), then benchmarks the underlying sparsity
//! analysis and BCS compression kernels.
//!
//! Additionally **gates** the bitplane refactor: the word-parallel analysis
//! path must be at least [`SPEEDUP_GATE`]× faster than the retained scalar
//! reference on a ResNet18-sized layer set (single-threaded), and the
//! result — along with machine-portable kernel ratios for the
//! `bench_kernels` regression guard — is written to `BENCH_sparsity.json`
//! in the workspace root.

use bitwave::experiments::sparsity::{
    fig01_sparsity_survey, fig04_bcs_representation, fig05_compression_ratio,
};
use bitwave_bench::{
    bench_context, measure_sparsity_kernel_ratios, min_sample_seconds, print_header,
    sparsity_layer_set, write_bench_json, SparsityKernelRatios,
};
use bitwave_core::compress::{BcsCodec, WeightCodec};
use bitwave_core::group::{extract_groups, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dnn::models::resnet18;
use bitwave_dnn::weights::generate_layer_sample;
use bitwave_tensor::bits::Encoding;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;

/// Minimum accepted packed-over-scalar analysis speedup.
const SPEEDUP_GATE: f64 = 4.0;

/// Samples per timing point (min-of-samples).
const SAMPLES: usize = 10;

/// The machine-readable record `bench_sparsity` commits to the workspace
/// root for the `bench_kernels` guard and for tracking across PRs.
#[derive(Debug, Serialize)]
struct SparsityBenchReport {
    /// Layers in the gated ResNet18-sized set.
    layers: usize,
    /// Total weights analysed per pass.
    total_weights: usize,
    /// Scalar full-set analysis wall time (min of samples), milliseconds.
    scalar_analysis_ms: f64,
    /// Bitplane full-set analysis wall time (min of samples), milliseconds;
    /// includes the packing itself.
    packed_analysis_ms: f64,
    /// `scalar_analysis_ms / packed_analysis_ms`.
    speedup: f64,
    /// The gate this run passed.
    speedup_gate: f64,
    /// Machine-portable kernel ratios (see
    /// [`bitwave_bench::SparsityKernelRatios`]).
    kernel_ratios: SparsityKernelRatios,
}

/// Gate: scalar vs bitplane single-thread analysis of a ResNet18-sized
/// layer set.  Group extraction is shared prep for both paths and is done
/// outside the timed region; each side then produces the full per-layer
/// statistics *and* BCS size accounting (the packed side includes the
/// bitplane packing itself).
fn assert_bitplane_speedup_gate() -> SparsityBenchReport {
    print_header(
        "sparsity_speedup",
        "scalar vs bitplane layer analysis (>=4x gate, single thread)",
    );
    let layers = sparsity_layer_set();
    let total_weights: usize = layers.iter().map(|w| w.data().len()).sum();
    let group_size = GroupSize::G16;
    let codec = BcsCodec::new(group_size, Encoding::SignMagnitude);
    let grouped: Vec<_> = layers
        .iter()
        .map(|weights| extract_groups(weights, group_size).unwrap())
        .collect();

    let scalar_s = min_sample_seconds(SAMPLES, || {
        for (weights, groups) in layers.iter().zip(&grouped) {
            black_box(LayerSparsityStats::from_tensor_and_groups_scalar(
                black_box(weights),
                groups,
            ));
            black_box(codec.compress_groups_scalar(groups.iter(), weights.data().len()));
        }
    });
    let packed_s = min_sample_seconds(SAMPLES, || {
        for (weights, groups) in layers.iter().zip(&grouped) {
            let planes = black_box(groups).to_bitplanes();
            black_box(LayerSparsityStats::from_tensor_and_planes(
                black_box(weights),
                &planes,
            ));
            black_box(codec.measure_packed(&planes, weights.data().len()));
        }
    });

    let speedup = scalar_s / packed_s.max(f64::MIN_POSITIVE);
    println!(
        "{} layers / {} weights: scalar {:.2} ms   bitplane {:.2} ms   speedup {:.1}x   (target: >={SPEEDUP_GATE}x)",
        layers.len(),
        total_weights,
        scalar_s * 1e3,
        packed_s * 1e3,
        speedup
    );
    assert!(
        speedup >= SPEEDUP_GATE,
        "bitplane analysis speedup {speedup:.2}x is below the {SPEEDUP_GATE}x gate"
    );
    SparsityBenchReport {
        layers: layers.len(),
        total_weights,
        scalar_analysis_ms: scalar_s * 1e3,
        packed_analysis_ms: packed_s * 1e3,
        speedup,
        speedup_gate: SPEEDUP_GATE,
        kernel_ratios: measure_sparsity_kernel_ratios(),
    }
}

fn print_figures() {
    let ctx = bench_context();

    print_header(
        "fig01_sparsity_survey",
        "Fig. 1 (value vs bit sparsity, SR ratios)",
    );
    for row in fig01_sparsity_survey(&ctx).expect("fig01 runs") {
        println!(
            "{:<12} value {:>5.1}%  bit(2C) {:>5.1}%  bit(SM) {:>5.1}%  SR(2C) {:>5.2}x  SR(SM) {:>5.2}x",
            row.network,
            100.0 * row.value_sparsity,
            100.0 * row.bit_sparsity_twos_complement,
            100.0 * row.bit_sparsity_sign_magnitude,
            row.speedup_ratio_twos_complement,
            row.speedup_ratio_sign_magnitude
        );
    }

    print_header(
        "fig04_bcs_representation",
        "Fig. 4 (2's complement vs sign-magnitude, G=4)",
    );
    let r = fig04_bcs_representation(&ctx).expect("fig04 runs");
    println!(
        "{}: value sparsity {:.1}%, zero columns 2C {:.1}%, SM {:.1}%  ({:.2}x improvement)",
        r.layer,
        100.0 * r.value_sparsity,
        100.0 * r.column_sparsity_twos_complement,
        100.0 * r.column_sparsity_sign_magnitude,
        r.sign_magnitude_improvement
    );

    print_header(
        "fig05_compression_ratio",
        "Fig. 5 (BCS vs ZRE vs CSR on ResNet18 late layers)",
    );
    for row in fig05_compression_ratio(&ctx).expect("fig05 runs") {
        println!(
            "{:<4} {:<6} ideal {:>5.2}x  with index {:>5.2}x",
            row.codec,
            row.group_size.map(|g| format!("G={g}")).unwrap_or_default(),
            row.cr_ideal,
            row.cr_with_index
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figures();
    let report = assert_bitplane_speedup_gate();
    write_bench_json("BENCH_sparsity.json", &report);

    let net = resnet18();
    let layer = net.layer("layer4.0.conv2").unwrap();
    let weights = generate_layer_sample(layer, 42, 60_000);
    let codec = BcsCodec::new(GroupSize::G16, Encoding::SignMagnitude);

    c.bench_function("kernel/bcs_compress_60k_weights", |b| {
        b.iter(|| black_box(codec.compress(black_box(weights.data()))))
    });
    c.bench_function("kernel/layer_sparsity_stats_60k_weights", |b| {
        b.iter(|| {
            black_box(LayerSparsityStats::analyze(
                black_box(&weights),
                GroupSize::G16,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
