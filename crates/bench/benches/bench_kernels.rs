//! Micro-benchmarks of the reproduction's hot kernels (not tied to a single
//! figure): sign-magnitude encoding, zero-column index parsing, the BCE
//! bit-column-serial inner loop, ZRE/CSR baselines and the Int8 reference
//! convolution used as the golden model.
//!
//! Before the criterion loops, the target **guards** the bitplane kernels
//! against regressions: it re-measures the machine-portable kernel ratios
//! (kernel min-time over a fixed scalar calibration kernel's min-time) and
//! fails if any ratio is more than 10 % above the committed
//! `BENCH_sparsity.json` baseline.  The guard is skipped — with a notice —
//! when no baseline file has been committed yet.

use bitwave_bench::{measure_sparsity_kernel_ratios, print_header, workspace_file};
use bitwave_core::compress::{CsrCodec, WeightCodec, ZreCodec};
use bitwave_dnn::infer::conv2d_int8;
use bitwave_sim::bce::BitColumnEngine;
use bitwave_sim::zcip::ZeroColumnIndexParser;
use bitwave_tensor::bits::{nonzero_column_mask, pack_column, Encoding};
use bitwave_tensor::prelude::*;
use bitwave_tensor::sm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Allowed relative regression of a kernel ratio vs the committed baseline.
const RATIO_TOLERANCE: f64 = 1.10;

/// Fails the bench run if the bitplane kernel ratios regressed by more than
/// 10 % against the committed `BENCH_sparsity.json` baseline.
fn guard_kernel_ratios() {
    print_header(
        "kernel_ratio_guard",
        "bitplane kernels vs committed BENCH_sparsity.json baseline (<=10% drift)",
    );
    let path = workspace_file("BENCH_sparsity.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!(
            "no committed baseline at {} — guard skipped (run bench_sparsity to create one)",
            path.display()
        );
        return;
    };
    let baseline: serde::Value = serde_json::from_str(&text).expect("BENCH_sparsity.json parses");
    let baseline_ratio = |kernel: &str| -> f64 {
        baseline
            .get("kernel_ratios")
            .and_then(|r| r.get(kernel))
            .and_then(serde::Value::as_f64)
            .expect("baseline kernel ratio present")
    };
    let current = measure_sparsity_kernel_ratios();
    for (kernel, measured) in [
        ("packed_analysis", current.packed_analysis),
        ("packed_compress", current.packed_compress),
    ] {
        let committed = baseline_ratio(kernel);
        let limit = committed * RATIO_TOLERANCE;
        println!(
            "{kernel}: baseline ratio {committed:.4}   measured {measured:.4}   limit {limit:.4}"
        );
        assert!(
            measured <= limit,
            "{kernel} kernel ratio {measured:.4} regressed more than 10% over the \
             committed baseline {committed:.4}"
        );
    }
}

fn bench(c: &mut Criterion) {
    guard_kernel_ratios();
    print_header(
        "kernel microbenchmarks",
        "hot loops of the reproduction itself",
    );

    let values: Vec<i8> = (0..65_536).map(|i| ((i * 31) % 251) as i8).collect();
    c.bench_function("kernel/sign_magnitude_encode_64k", |b| {
        b.iter(|| black_box(sm::encode_slice(black_box(&values))))
    });

    c.bench_function("kernel/zre_compress_64k", |b| {
        let codec = ZreCodec::default();
        b.iter(|| black_box(codec.compress(black_box(&values))))
    });
    c.bench_function("kernel/csr_compress_64k", |b| {
        let codec = CsrCodec::new(512);
        b.iter(|| black_box(codec.compress(black_box(&values))))
    });

    // One BCE group execution (the innermost hardware loop).
    let group_weights: Vec<i8> = vec![3, -5, 0, 7, -2, 1, 4, -6];
    let activations: Vec<i8> = vec![12, -34, 56, -78, 90, -11, 23, -45];
    let index = nonzero_column_mask(&group_weights, Encoding::SignMagnitude);
    let columns: Vec<u64> = (0..8)
        .filter(|&b| (index >> b) & 1 == 1)
        .map(|b| pack_column(&group_weights, b, Encoding::SignMagnitude))
        .collect();
    let group = bitwave_core::compress::BcsGroup { index, columns };
    let parser = ZeroColumnIndexParser::new();
    let schedule = parser.parse(group.index);
    c.bench_function("kernel/bce_process_group", |b| {
        b.iter(|| {
            let mut bce = BitColumnEngine::new();
            black_box(bce.process_group(
                black_box(&group),
                black_box(&schedule),
                black_box(&activations),
            ))
        })
    });

    // The Int8 reference convolution (golden model).
    let input = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Uniform { range: 1.0 }, 1)
            .generate(Shape::feature_map(1, 16, 16, 16)),
        8,
    )
    .unwrap();
    let weights = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Gaussian { std: 0.05 }, 2)
            .generate(Shape::conv_weight(16, 16, 3, 3)),
        8,
    )
    .unwrap();
    c.bench_function("kernel/reference_conv2d_16x16x16", |b| {
        b.iter(|| black_box(conv2d_int8(black_box(&input), black_box(&weights), 1, 1).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
