//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one or more tables/figures of the paper
//! (printing the rows exactly once, before timing) and then benchmarks the
//! computational kernel behind that experiment so regressions in the
//! reproduction's own performance are visible.

#![forbid(unsafe_code)]

use bitwave::context::ExperimentContext;

/// The experiment context used by all bench targets: the default
/// configuration with a moderate sampling cap so that a full `cargo bench`
/// pass completes in minutes rather than hours.
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::default().with_sample_cap(20_000)
}

/// Prints a figure/table header so the bench output doubles as the
/// regenerated evaluation tables.
pub fn print_header(experiment: &str, paper_reference: &str) {
    println!();
    println!("================================================================");
    println!("{experiment}  —  reproduces {paper_reference}");
    println!("================================================================");
}
