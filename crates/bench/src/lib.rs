//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one or more tables/figures of the paper
//! (printing the rows exactly once, before timing) and then benchmarks the
//! computational kernel behind that experiment so regressions in the
//! reproduction's own performance are visible.
//!
//! Two targets additionally persist machine-readable results into the
//! workspace root:
//!
//! * `bench_sparsity` writes `BENCH_sparsity.json` — the scalar-vs-bitplane
//!   analysis speedup (gated at ≥ 4×) plus **machine-portable kernel
//!   ratios** (each kernel's min-time divided by a fixed calibration
//!   kernel's min-time on the same machine, so the committed baseline is
//!   comparable across hosts);
//! * `bench_serve` writes `BENCH_serve.json` — cold vs cache-hit request
//!   throughput and the cold `/v1/evaluate` latency.
//!
//! `bench_kernels` reads the committed `BENCH_sparsity.json` back and fails
//! if the re-measured kernel ratios regressed by more than 10 %.

#![forbid(unsafe_code)]

use bitwave::context::ExperimentContext;
use bitwave_core::compress::BcsCodec;
use bitwave_core::group::{extract_groups, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dnn::models::resnet18;
use bitwave_dnn::weights::generate_layer_sample;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::QuantTensor;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The experiment context used by all bench targets: the default
/// configuration with a moderate sampling cap so that a full `cargo bench`
/// pass completes in minutes rather than hours.
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::default().with_sample_cap(20_000)
}

/// Prints a figure/table header so the bench output doubles as the
/// regenerated evaluation tables.
pub fn print_header(experiment: &str, paper_reference: &str) {
    println!();
    println!("================================================================");
    println!("{experiment}  —  reproduces {paper_reference}");
    println!("================================================================");
}

/// Absolute path of a file in the workspace root (two levels above the
/// bench crate's manifest), where the committed `BENCH_*.json` files live.
pub fn workspace_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

/// Serializes `value` as pretty JSON into `BENCH_<name>.json` in the
/// workspace root and prints the destination.
pub fn write_bench_json<T: Serialize>(name: &str, value: &T) {
    let path = workspace_file(name);
    let json = serde_json::to_string_pretty(value).expect("bench report serializes");
    std::fs::write(&path, json + "\n").expect("bench report is writable");
    println!("wrote {}", path.display());
}

/// Minimum wall-clock seconds of one call to `f` over `samples` runs — the
/// low-noise point estimate both the speedup gate and the kernel-ratio
/// guard time with.
pub fn min_sample_seconds(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The ResNet18-sized layer set the sparsity kernels are gated on: one
/// sampled weight tensor per conv/fc layer, ~60k weights apiece.
pub fn sparsity_layer_set() -> Vec<QuantTensor> {
    let net = resnet18();
    net.layers
        .iter()
        .filter(|layer| layer.weight_shape().num_elements() > 0)
        .map(|layer| generate_layer_sample(layer, 42, 60_000))
        .collect()
}

/// Machine-portable ratios of the sparsity kernels: each kernel's min-time
/// divided by the same machine's calibration-kernel min-time (scalar
/// sign-magnitude group analysis of one fixed tensor).  Ratios cancel the
/// host's absolute speed, so a committed baseline is meaningful on other
/// machines; they regress only when the *kernel* gets slower relative to
/// straight-line scalar code.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SparsityKernelRatios {
    /// Packed (bitplane) full-layer analysis over the calibration kernel.
    pub packed_analysis: f64,
    /// Packed (size-only) BCS accounting over the calibration kernel.
    pub packed_compress: f64,
}

const RATIO_SAMPLES: usize = 15;

/// Measures [`SparsityKernelRatios`] on this machine.  Shared by
/// `bench_sparsity` (which writes the baseline) and `bench_kernels` (which
/// guards against regressions), so both sides time exactly the same code.
pub fn measure_sparsity_kernel_ratios() -> SparsityKernelRatios {
    let net = resnet18();
    let layer = net.layer("layer4.0.conv2").expect("resnet18 layer exists");
    let weights = generate_layer_sample(layer, 42, 60_000);
    let group_size = GroupSize::G16;
    let groups = extract_groups(&weights, group_size).expect("groups extract");
    let codec = BcsCodec::new(group_size, Encoding::SignMagnitude);

    let calibration = min_sample_seconds(RATIO_SAMPLES, || {
        black_box(LayerSparsityStats::from_tensor_and_groups_scalar(
            black_box(&weights),
            black_box(&groups),
        ));
    });
    let packed_analysis = min_sample_seconds(RATIO_SAMPLES, || {
        let planes = black_box(&groups).to_bitplanes();
        black_box(LayerSparsityStats::from_tensor_and_planes(
            black_box(&weights),
            &planes,
        ));
    });
    let packed_compress = min_sample_seconds(RATIO_SAMPLES, || {
        let planes = black_box(&groups).to_bitplanes();
        black_box(codec.measure_packed(&planes, weights.data().len()));
    });

    let calibration = calibration.max(f64::MIN_POSITIVE);
    SparsityKernelRatios {
        packed_analysis: packed_analysis / calibration,
        packed_compress: packed_compress / calibration,
    }
}
