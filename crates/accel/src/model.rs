//! STEP 3 + STEP 4: the sparsity-aware performance and energy model
//! (Eqs. 1–5 of the paper).
//!
//! For every layer the model
//!
//! 1. picks the accelerator's spatial unrolling (fixed, or per-layer for the
//!    dynamic-dataflow machines) and derives dense activity counts
//!    (`bitwave-dataflow`),
//! 2. applies value-sparsity skipping (Eq. 1, SCNN only), bit-level or
//!    bit-column-level cycle reduction (the `Bw` loop shrinks to the
//!    imbalance-adjusted non-zero bit/column count), and weight-compression
//!    scaling of the memory traffic (Eq. 3),
//! 3. converts memory traffic into cycles using each interface's bandwidth
//!    and combines them with the compute cycles following Eq. 5 (compute and
//!    on-chip transfers overlap; DRAM traffic and output write-back add on
//!    top),
//! 4. prices every remaining operation with the unit energies of Eq. 4.

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::sparsity::LayerSparsityProfile;
use crate::spec::{AcceleratorSpec, PeStyle, WeightCompression};
use bitwave_dataflow::mapping::{select_spatial_unrolling, MappingError};
use bitwave_dataflow::{
    dram_reads, dram_reads_auto, ActivityCounts, MemoryBoundedness, MemoryHierarchy,
    TemporalMapping,
};
use bitwave_dnn::layer::LayerSpec;
use bitwave_dnn::models::NetworkSpec;
use serde::{Serialize, Value};

/// Performance and energy of one layer on one accelerator.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Layer name.
    pub layer: String,
    /// Chosen spatial unrolling.
    pub su: String,
    /// PE-array utilisation under that SU.
    pub utilization: f64,
    /// Effective MAC operations after value-sparsity skipping (Eq. 1).
    pub effective_macs: f64,
    /// Compute cycles (Eq. 2, including bit-serial cycle expansion and
    /// bit/column skipping).
    pub compute_cycles: f64,
    /// Cycles spent on DRAM traffic: burst-quantised roofline cycles under a
    /// constrained DRAM tier, the legacy additive Eq. 5 term otherwise.
    pub dram_cycles: f64,
    /// Total latency in cycles (Eq. 5, or `max(compute, dram)` under a
    /// constrained DRAM tier).
    pub total_cycles: f64,
    /// Energy breakdown (Eq. 4).
    pub energy: EnergyBreakdown,
    /// Compute-vs-memory verdict; present only under a constrained DRAM
    /// tier (the unconstrained default reports `None` and serializes
    /// without the field, keeping existing outputs byte-identical).
    pub boundedness: Option<MemoryBoundedness>,
}

/// Hand-written so the `boundedness` field is omitted (not `null`) while
/// the DRAM tier is unconstrained — figure/table exports of existing
/// configurations keep their exact bytes.
impl Serialize for LayerResult {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("layer".to_string(), self.layer.to_value()),
            ("su".to_string(), self.su.to_value()),
            ("utilization".to_string(), self.utilization.to_value()),
            ("effective_macs".to_string(), self.effective_macs.to_value()),
            ("compute_cycles".to_string(), self.compute_cycles.to_value()),
            ("dram_cycles".to_string(), self.dram_cycles.to_value()),
            ("total_cycles".to_string(), self.total_cycles.to_value()),
            ("energy".to_string(), self.energy.to_value()),
        ];
        if let Some(boundedness) = &self.boundedness {
            fields.push(("boundedness".to_string(), boundedness.to_value()));
        }
        Value::Object(fields)
    }
}

/// Aggregated performance and energy of a whole network on one accelerator.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkResult {
    /// Accelerator label (e.g. "BitWave+DF+SM+BF").
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
    /// Total latency in cycles.
    pub total_cycles: f64,
    /// Total energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total effective MAC operations.
    pub effective_macs: f64,
    /// Total dense MAC operations of the workload.
    pub total_macs: u64,
}

impl NetworkResult {
    /// Speedup of `self` relative to `baseline` (higher is better).
    pub fn speedup_over(&self, baseline: &NetworkResult) -> f64 {
        baseline.total_cycles / self.total_cycles
    }

    /// Energy of `self` relative to `baseline` (lower is better).
    pub fn relative_energy(&self, baseline: &NetworkResult) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Energy efficiency in useful operations per picojoule (2 ops per
    /// effective MAC, as the paper counts "actual useful operations").
    pub fn energy_efficiency_ops_per_pj(&self) -> f64 {
        2.0 * self.effective_macs / self.energy.total_pj()
    }

    /// Energy-efficiency ratio relative to `baseline` (higher is better).
    pub fn efficiency_over(&self, baseline: &NetworkResult) -> f64 {
        self.energy_efficiency_ops_per_pj() / baseline.energy_efficiency_ops_per_pj()
    }
}

/// Evaluates one layer on one accelerator (Eqs. 1–5), selecting the spatial
/// unrolling from the accelerator's SU set with the Fig. 9 heuristic.
///
/// # Errors
///
/// Propagates [`MappingError`] when the SU set is empty or the layer has a
/// zero-sized loop dimension.
pub fn evaluate_layer(
    spec: &AcceleratorSpec,
    layer: &LayerSpec,
    profile: &LayerSparsityProfile,
    memory: &MemoryHierarchy,
    energy_model: &EnergyModel,
) -> Result<LayerResult, MappingError> {
    let decision = select_spatial_unrolling(layer, &spec.su_set)?;
    Ok(evaluate_layer_with_mapping(
        spec,
        layer,
        &decision,
        profile,
        memory,
        energy_model,
    ))
}

/// Load-imbalance realisation factor for value-sparsity skipping (STEP 2):
/// the PEs of a value-sparse machine intersect irregular non-zero patterns
/// and stay in lockstep per tile, so only part of the skipped work turns
/// into cycle savings (the paper adjusts the sparsity statistics for this
/// imbalance; SCNN's own evaluation realises roughly half of the ideal
/// intersection speedup).  Energy still benefits from every skipped MAC.
const VALUE_SKIP_REALISATION: f64 = 0.5;

/// The memory-hierarchy-**invariant** half of one layer's Eq. 1–5
/// evaluation: everything that depends only on the layer, the mapping
/// decision, the sparsity profile and the accelerator's compute-side
/// parameters (PE style, sync granularity, SU menu, SRAM port widths).
/// Candidates that differ only along the SRAM-capacity / DRAM-bandwidth
/// axes share one `FactoredLayerCost` and re-price it per point with
/// [`FactoredLayerCost::reprice`] — the factored sweep's amortization unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactoredLayerCost {
    temporal: Option<TemporalMapping>,
    weight_count: u64,
    input_count: u64,
    output_count: u64,
    weight_cr: f64,
    effective_macs: f64,
    compute_cycles: f64,
    compute_side_cycles: f64,
    compute_pj: f64,
    register_pj: f64,
    sram_read_pj: f64,
}

/// One layer's Eq. 1–5 outcome after re-pricing a [`FactoredLayerCost`]
/// against a concrete memory hierarchy and DRAM tier — exactly the fields
/// of [`LayerResult`] that the memory axes can change, plus the invariant
/// ones needed to assemble a full result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepricedLayerCost {
    /// Effective MAC operations after value-sparsity skipping (Eq. 1).
    pub effective_macs: f64,
    /// Compute cycles (Eq. 2; memory-invariant, carried through).
    pub compute_cycles: f64,
    /// Cycles spent on DRAM traffic.
    pub dram_cycles: f64,
    /// Total latency in cycles (Eq. 5 / roofline).
    pub total_cycles: f64,
    /// Energy breakdown (Eq. 4).
    pub energy: EnergyBreakdown,
    /// Compute-vs-memory verdict under a constrained DRAM tier.
    pub boundedness: Option<MemoryBoundedness>,
}

/// Computes the memory-invariant part of one layer's evaluation (Eqs. 1, 2,
/// 4-compute and the compute side of Eq. 5).  Only `spec`'s compute-side
/// fields are read — the SRAM capacities of the memory hierarchy and the
/// DRAM axes (`spec.dram`, `spec.dram_bandwidth_bits`) enter later, in
/// [`FactoredLayerCost::reprice`].
pub fn factor_layer_with_mapping(
    spec: &AcceleratorSpec,
    layer: &LayerSpec,
    decision: &bitwave_dataflow::MappingDecision,
    profile: &LayerSparsityProfile,
    energy_model: &EnergyModel,
) -> FactoredLayerCost {
    let activity = ActivityCounts::analyze_spatial(layer, &decision.su);

    // Eq. 1: value-sparsity skipping (only machines that support it).
    let keep_w = if spec.sparsity.weight_value {
        1.0 - profile.weight_value_sparsity
    } else {
        1.0
    };
    let keep_a = if spec.sparsity.activation_value {
        1.0 - profile.activation_value_sparsity
    } else {
        1.0
    };
    let effective_macs = activity.macs as f64 * keep_w * keep_a;

    let keep_w_cycles = if spec.sparsity.weight_value {
        1.0 - VALUE_SKIP_REALISATION * profile.weight_value_sparsity
    } else {
        1.0
    };
    let keep_a_cycles = if spec.sparsity.activation_value {
        1.0 - VALUE_SKIP_REALISATION * profile.activation_value_sparsity
    } else {
        1.0
    };
    let cycle_macs = activity.macs as f64 * keep_w_cycles * keep_a_cycles;

    // Eq. 2: compute cycles.  Bit-serial datapaths expand each MAC into the
    // (possibly skipped, imbalance-adjusted) number of weight-bit cycles.
    let lanes = decision.effective_macs_per_cycle.max(1.0);
    let bits_per_mac = match spec.pe_style {
        PeStyle::BitParallel => 1.0,
        PeStyle::BitSerial => {
            if spec.sparsity.weight_bit {
                match spec.sync_lanes {
                    n if n >= 64 => profile.max_nonzero_bits_sync64,
                    n if n > 1 => profile.max_nonzero_bits_sync16,
                    _ => profile.mean_nonzero_bits_tc,
                }
            } else {
                8.0
            }
        }
        PeStyle::BitColumnSerial => {
            if spec.sparsity.weight_bit_column {
                if spec.sync_lanes > 1 {
                    profile.max_nonzero_columns_synced
                } else {
                    profile.mean_nonzero_columns
                }
            } else {
                8.0
            }
        }
    };
    let compute_cycles = cycle_macs * bits_per_mac / lanes;

    // Eq. 3: compression-adjusted memory traffic (weights only; activations
    // stay uncompressed in all modelled machines).
    let weight_cr = match spec.compression {
        WeightCompression::None => 1.0,
        WeightCompression::Zre => profile.zre_compression_ratio.max(f64::MIN_POSITIVE),
        // BitWave decides per layer whether to store BCS-compressed or dense
        // weights (the ZCIP has a dense mode exactly for this), so a layer
        // whose index overhead exceeds its savings falls back to CR = 1.
        WeightCompression::Bcs => profile.bcs_compression_ratio.max(1.0),
    };
    // Compressed weights are also held compressed on chip: BitWave streams
    // BCS columns straight into the PE array, SCNN stores ZRE symbols whose
    // index overhead *increases* on-chip traffic when value sparsity is low
    // (CR < 1), which is the paper's explanation of SCNN's energy loss.
    let sram_read_weight_e = if spec.compression == WeightCompression::None {
        activity.sram_read_weight as f64
    } else {
        activity.sram_read_weight as f64 / weight_cr
    };
    // Value-sparsity machines also skip the corresponding operand fetches.
    let sram_read_input_e = activity.sram_read_input as f64 * keep_a;
    let reg_read_e = activity.reg_read as f64 * keep_w * keep_a;
    let reg_write_e = activity.reg_write as f64 * keep_w * keep_a;

    // The compute side of Eq. 5: on-chip reads and register traffic overlap
    // with compute; the output write-back does not.
    let sram_read_input_cycles = sram_read_input_e * 8.0 / spec.act_sram_bandwidth_bits as f64;
    let sram_read_weight_cycles = sram_read_weight_e * 8.0 / spec.weight_sram_bandwidth_bits as f64;
    let sram_write_output_cycles =
        activity.sram_write_output as f64 * 8.0 / spec.act_sram_bandwidth_bits as f64;
    let reg_cycles = reg_read_e / decision.su.parallelism().max(1) as f64;
    let compute_side_cycles = sram_write_output_cycles
        + compute_cycles
            .max(sram_read_input_cycles)
            .max(sram_read_weight_cycles)
            .max(reg_cycles);

    // The memory-invariant Eq. 4 terms.
    let compute_pj = match spec.pe_style {
        PeStyle::BitParallel => effective_macs * energy_model.mac_8x8_pj,
        PeStyle::BitSerial => effective_macs * bits_per_mac * energy_model.mac_bit_serial_pj,
        PeStyle::BitColumnSerial => effective_macs * bits_per_mac * energy_model.mac_bit_column_pj,
    };
    let register_pj = (reg_read_e + reg_write_e) * energy_model.reg_access_pj;
    let sram_read_pj =
        (sram_read_input_e + sram_read_weight_e) * energy_model.sram_read_pj_per_byte;

    let dims = &layer.dims;
    FactoredLayerCost {
        temporal: decision.temporal,
        weight_count: dims.weight_count(),
        input_count: dims.input_count(),
        output_count: dims.output_count(),
        weight_cr,
        effective_macs,
        compute_cycles,
        compute_side_cycles,
        compute_pj,
        register_pj,
        sram_read_pj,
    }
}

impl FactoredLayerCost {
    /// Re-prices the factored layer against a concrete memory hierarchy and
    /// the DRAM axes of `spec` (`spec.dram`, `spec.dram_bandwidth_bits`) —
    /// the cheap per-point half of Eq. 5 + Eq. 4: the SRAM fit check /
    /// DRAM traffic, the roofline `max`, and the traffic-dependent energy
    /// terms.  Bit-for-bit, [`evaluate_layer_with_mapping`] ≡
    /// `factor_layer_with_mapping(...).reprice(...)`; the full evaluator is
    /// itself implemented this way.
    pub fn reprice(
        &self,
        spec: &AcceleratorSpec,
        memory: &MemoryHierarchy,
        energy_model: &EnergyModel,
    ) -> RepricedLayerCost {
        let (dram_read_weight, dram_read_act) = match self.temporal {
            Some(temporal) => dram_reads(
                self.weight_count,
                self.input_count,
                self.output_count,
                memory,
                temporal,
            ),
            None => dram_reads_auto(
                self.weight_count,
                self.input_count,
                self.output_count,
                memory,
            ),
        };
        let dram_read_weight_e = dram_read_weight as f64 / self.weight_cr;
        // The weight SRAM is filled once per DRAM read, compressed.
        let sram_write_weight_e = dram_read_weight as f64 / self.weight_cr;

        // The DRAM side of Eq. 5: additive at the unconstrained default (the
        // legacy behaviour), the second side of the per-layer roofline
        // `max(cycle_compute, cycle_dram)` under a constrained tier — DRAM
        // transfers overlap with compute through double buffering, so the
        // slower side sets the layer latency.
        let dram_bytes = dram_read_act as f64 + dram_read_weight_e + self.output_count as f64;
        let (dram_cycles, total_cycles, boundedness) = if spec.dram.is_constrained() {
            let dram_cycles = spec.dram.cycles_for_bytes(dram_bytes);
            // The DRAM reads scale with the refetch multipliers, so dividing
            // by the per-operand footprint recovers them exactly.
            let weight_fetches = match self.weight_count {
                0 => 0,
                count => dram_read_weight / count,
            };
            let act_fetches = match self.input_count {
                0 => 0,
                count => dram_read_act / count,
            };
            let boundedness = MemoryBoundedness::from_roofline(
                self.compute_side_cycles,
                dram_cycles,
                dram_bytes,
                weight_fetches,
                act_fetches,
            );
            (
                dram_cycles,
                self.compute_side_cycles.max(dram_cycles),
                Some(boundedness),
            )
        } else {
            let dram_cycles = dram_bytes * 8.0 / spec.dram_bandwidth_bits as f64;
            (dram_cycles, dram_cycles + self.compute_side_cycles, None)
        };

        // The traffic-dependent Eq. 4 terms (the input-SRAM fill mirrors the
        // activation DRAM reads, the weight-SRAM fill the compressed weight
        // reads, and the output write-back is invariant).
        let sram_pj = self.sram_read_pj
            + (dram_read_act as f64 + sram_write_weight_e + self.output_count as f64)
                * energy_model.sram_write_pj_per_byte;
        let dram_pj = dram_bytes * energy_model.dram_pj_per_byte;

        RepricedLayerCost {
            effective_macs: self.effective_macs,
            compute_cycles: self.compute_cycles,
            dram_cycles,
            total_cycles,
            energy: EnergyBreakdown {
                compute_pj: self.compute_pj,
                sram_pj,
                register_pj: self.register_pj,
                dram_pj,
            },
            boundedness,
        }
    }
}

/// The equivalence class of [`factor_layer_with_mapping`]'s `bits_per_mac`
/// branch: two accelerator specs in the same class read the same sparsity
/// statistic, so (with equal lanes, menu and SRAM port widths) they share
/// factored compute parts.  The sweep's group cache keys on this.
pub fn bits_per_mac_class(spec: &AcceleratorSpec) -> &'static str {
    match spec.pe_style {
        PeStyle::BitParallel => "bit-parallel",
        PeStyle::BitSerial => {
            if spec.sparsity.weight_bit {
                match spec.sync_lanes {
                    n if n >= 64 => "bit-serial/sync64",
                    n if n > 1 => "bit-serial/sync16",
                    _ => "bit-serial/tc",
                }
            } else {
                "bit-serial/dense"
            }
        }
        PeStyle::BitColumnSerial => {
            if spec.sparsity.weight_bit_column {
                if spec.sync_lanes > 1 {
                    "bit-column/synced"
                } else {
                    "bit-column/mean"
                }
            } else {
                "bit-column/dense"
            }
        }
    }
}

/// Evaluates one layer on one accelerator (Eqs. 1–5) under an already chosen
/// mapping decision — the entry point of the pipeline's simulate stage and
/// the DSE cost model, which receive the decision instead of re-deriving it.
/// When the decision carries an explicit [`bitwave_dataflow::TemporalMapping`]
/// (a searched loop order + tiling), the activity counts honour it; otherwise
/// the model's automatic cheapest-order choice applies.
///
/// Implemented as [`factor_layer_with_mapping`] + [`FactoredLayerCost::reprice`],
/// so the factored path used by the sweep is byte-identical by construction.
pub fn evaluate_layer_with_mapping(
    spec: &AcceleratorSpec,
    layer: &LayerSpec,
    decision: &bitwave_dataflow::MappingDecision,
    profile: &LayerSparsityProfile,
    memory: &MemoryHierarchy,
    energy_model: &EnergyModel,
) -> LayerResult {
    let factored = factor_layer_with_mapping(spec, layer, decision, profile, energy_model);
    let repriced = factored.reprice(spec, memory, energy_model);
    LayerResult {
        layer: layer.name.clone(),
        su: decision.label.clone(),
        utilization: decision.utilization,
        effective_macs: repriced.effective_macs,
        compute_cycles: repriced.compute_cycles,
        dram_cycles: repriced.dram_cycles,
        total_cycles: repriced.total_cycles,
        energy: repriced.energy,
        boundedness: repriced.boundedness,
    }
}

/// Evaluates a whole network on one accelerator.  `profiles` must be aligned
/// with `network.layers` (one sparsity profile per layer, in order).
///
/// # Errors
///
/// Propagates [`MappingError`] from the per-layer SU selection.
///
/// # Panics
///
/// Panics if `profiles.len() != network.layers.len()`.
pub fn evaluate_network(
    spec: &AcceleratorSpec,
    network: &NetworkSpec,
    profiles: &[LayerSparsityProfile],
    memory: &MemoryHierarchy,
    energy_model: &EnergyModel,
) -> Result<NetworkResult, MappingError> {
    assert_eq!(
        profiles.len(),
        network.layers.len(),
        "one sparsity profile per layer is required"
    );
    let mut layers = Vec::with_capacity(network.layers.len());
    let mut total_cycles = 0.0f64;
    let mut energy = EnergyBreakdown::default();
    let mut effective_macs = 0.0f64;
    for (layer, profile) in network.layers.iter().zip(profiles) {
        let result = evaluate_layer(spec, layer, profile, memory, energy_model)?;
        total_cycles += result.total_cycles;
        energy = energy.accumulate(&result.energy);
        effective_macs += result.effective_macs;
        layers.push(result);
    }
    Ok(NetworkResult {
        accelerator: spec.label.clone(),
        network: network.name.clone(),
        layers,
        total_cycles,
        energy,
        effective_macs,
        total_macs: network.total_macs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BitwaveOptimizations;
    use bitwave_core::group::GroupSize;
    use bitwave_dnn::models::resnet18;
    use bitwave_dnn::weights::generate_layer_sample;

    fn layer_profile(layer: &LayerSpec) -> LayerSparsityProfile {
        let w = generate_layer_sample(layer, 3, 40_000);
        LayerSparsityProfile::from_weights(&w, layer.expected_activation_sparsity(), GroupSize::G8)
            .unwrap()
    }

    fn resnet_profiles(net: &NetworkSpec) -> Vec<LayerSparsityProfile> {
        net.layers.iter().map(layer_profile).collect()
    }

    #[test]
    fn bitwave_sm_beats_dense_on_sparse_layers() {
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let profile = layer_profile(layer);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let dense =
            evaluate_layer(&AcceleratorSpec::dense(), layer, &profile, &mem, &energy).unwrap();
        let bitwave = evaluate_layer(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            layer,
            &profile,
            &mem,
            &energy,
        )
        .unwrap();
        assert!(bitwave.total_cycles < dense.total_cycles);
        assert!(bitwave.energy.total_pj() < dense.energy.total_pj());
    }

    #[test]
    fn dense_profile_neutralises_sparsity_advantages() {
        let net = resnet18();
        let layer = net.layer("layer2.0.conv1").unwrap();
        let dense_profile = LayerSparsityProfile::dense(8);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let stripes = evaluate_layer(
            &AcceleratorSpec::stripes(),
            layer,
            &dense_profile,
            &mem,
            &energy,
        )
        .unwrap();
        let pragmatic = evaluate_layer(
            &AcceleratorSpec::pragmatic(),
            layer,
            &dense_profile,
            &mem,
            &energy,
        )
        .unwrap();
        // With zero bit sparsity Pragmatic degenerates to Stripes.
        assert!((stripes.compute_cycles - pragmatic.compute_cycles).abs() < 1e-6);
    }

    #[test]
    fn network_evaluation_aggregates_layers() {
        let net = resnet18();
        let profiles = resnet_profiles(&net);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let result = evaluate_network(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            &net,
            &profiles,
            &mem,
            &energy,
        )
        .unwrap();
        assert_eq!(result.layers.len(), net.layers.len());
        let sum: f64 = result.layers.iter().map(|l| l.total_cycles).sum();
        assert!((sum - result.total_cycles).abs() / sum < 1e-9);
        assert_eq!(result.total_macs, net.total_macs());
        assert!(result.energy_efficiency_ops_per_pj() > 0.0);
    }

    #[test]
    fn figure13_breakdown_is_monotonic_for_resnet() {
        // Dense -> +DF -> +SM must be monotonically faster (BF is exercised in
        // the facade where flipped weights are available).
        let net = resnet18();
        let profiles = resnet_profiles(&net);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let dense =
            evaluate_network(&AcceleratorSpec::dense(), &net, &profiles, &mem, &energy).unwrap();
        let df = evaluate_network(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_only()),
            &net,
            &profiles,
            &mem,
            &energy,
        )
        .unwrap();
        let df_sm = evaluate_network(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_sm()),
            &net,
            &profiles,
            &mem,
            &energy,
        )
        .unwrap();
        assert!(df.speedup_over(&dense) >= 1.0);
        assert!(df_sm.speedup_over(&dense) > df.speedup_over(&dense));
        assert!(df_sm.speedup_over(&dense) > 1.2);
    }

    #[test]
    fn bitwave_outperforms_sota_set_on_resnet() {
        let net = resnet18();
        let profiles = resnet_profiles(&net);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let results: Vec<NetworkResult> = AcceleratorSpec::sota_comparison_set()
            .iter()
            .map(|spec| evaluate_network(spec, &net, &profiles, &mem, &energy).unwrap())
            .collect();
        let bitwave = results.last().unwrap();
        assert_eq!(bitwave.accelerator, "BitWave+DF+SM+BF");
        for other in &results[..results.len() - 1] {
            assert!(
                bitwave.total_cycles <= other.total_cycles * 1.001,
                "BitWave ({:.3e} cycles) should not lose to {} ({:.3e})",
                bitwave.total_cycles,
                other.accelerator,
                other.total_cycles
            );
            assert!(
                bitwave.energy.total_pj() <= other.energy.total_pj(),
                "BitWave should not use more energy than {}",
                other.accelerator
            );
        }
    }

    #[test]
    fn speedup_and_efficiency_helpers_are_reciprocal() {
        let net = resnet18();
        let profiles = resnet_profiles(&net);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let a = evaluate_network(&AcceleratorSpec::scnn(), &net, &profiles, &mem, &energy).unwrap();
        let b = evaluate_network(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            &net,
            &profiles,
            &mem,
            &energy,
        )
        .unwrap();
        let s = b.speedup_over(&a);
        assert!((a.speedup_over(&b) - 1.0 / s).abs() < 1e-12);
        assert!(b.relative_energy(&a) <= 1.0);
        assert!(b.efficiency_over(&a) >= 1.0);
    }

    #[test]
    fn unconstrained_dram_totals_are_additive_and_unreported() {
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let profile = layer_profile(layer);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let result = evaluate_layer(&spec, layer, &profile, &mem, &energy).unwrap();
        assert!(result.boundedness.is_none());
        assert!(result.total_cycles > result.dram_cycles);
        assert!(result.total_cycles > result.compute_cycles);
        let json = serde_json::to_string(&result).unwrap();
        assert!(
            !json.contains("boundedness"),
            "unconstrained layers must serialize without the boundedness key: {json}"
        );
    }

    #[test]
    fn generous_constrained_dram_reduces_to_compute_side() {
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let profile = layer_profile(layer);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        spec.dram = bitwave_dataflow::DramSpec::constrained(1 << 30);
        let result = evaluate_layer(&spec, layer, &profile, &mem, &energy).unwrap();
        let boundedness = result
            .boundedness
            .expect("constrained tier reports verdict");
        assert!(!boundedness.memory_bound);
        assert!((result.total_cycles - boundedness.compute_side_cycles).abs() < 1e-9);
        assert_eq!(boundedness.dram_stall_cycles, 0.0);
        assert_eq!(boundedness.dram_stall_fraction, 0.0);
        // The roofline's compute side equals the legacy total minus its
        // additive DRAM term.
        let legacy = evaluate_layer(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            layer,
            &profile,
            &mem,
            &energy,
        )
        .unwrap();
        let legacy_compute_side = legacy.total_cycles - legacy.dram_cycles;
        assert!((boundedness.compute_side_cycles - legacy_compute_side).abs() < 1e-6);
    }

    #[test]
    fn starved_dram_makes_the_layer_memory_bound() {
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let profile = layer_profile(layer);
        let mem = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        spec.dram = bitwave_dataflow::DramSpec::constrained(1);
        let result = evaluate_layer(&spec, layer, &profile, &mem, &energy).unwrap();
        let boundedness = result
            .boundedness
            .expect("constrained tier reports verdict");
        assert!(boundedness.memory_bound);
        assert!((result.total_cycles - boundedness.dram_cycles).abs() < 1e-9);
        assert!(boundedness.dram_stall_fraction > 0.5);
        assert!(boundedness.weight_fetches >= 1);
        assert!(boundedness.act_fetches >= 1);
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("\"boundedness\""));
        assert!(json.contains("\"memory_bound\":true"));
    }

    #[test]
    fn factored_reprice_reproduces_the_full_evaluation_bitwise() {
        let net = resnet18();
        let energy = EnergyModel::finfet_16nm();
        // Both SRAM-fit regimes (a roomy hierarchy and a starved one that
        // forces refetch tiling) × unconstrained and constrained DRAM tiers.
        let roomy = MemoryHierarchy::bitwave_default();
        let starved = MemoryHierarchy {
            weight_sram_bytes: 16 * 1024,
            activation_sram_bytes: 16 * 1024,
            ..MemoryHierarchy::bitwave_default()
        };
        let mut throttled = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        throttled.dram = bitwave_dataflow::DramSpec::constrained(32);
        let specs = [
            AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            AcceleratorSpec::scnn(),
            throttled,
        ];
        for spec in &specs {
            for layer in net.layers.iter().take(6) {
                let profile = layer_profile(layer);
                let decision = select_spatial_unrolling(layer, &spec.su_set).unwrap();
                let factored = factor_layer_with_mapping(spec, layer, &decision, &profile, &energy);
                for mem in [&roomy, &starved] {
                    let full =
                        evaluate_layer_with_mapping(spec, layer, &decision, &profile, mem, &energy);
                    let repriced = factored.reprice(spec, mem, &energy);
                    assert_eq!(
                        full.total_cycles.to_bits(),
                        repriced.total_cycles.to_bits(),
                        "{} / {}",
                        spec.label,
                        layer.name
                    );
                    assert_eq!(full.dram_cycles.to_bits(), repriced.dram_cycles.to_bits());
                    assert_eq!(
                        full.energy.total_pj().to_bits(),
                        repriced.energy.total_pj().to_bits()
                    );
                    assert_eq!(full.boundedness, repriced.boundedness);
                }
            }
        }
    }

    #[test]
    fn bits_per_mac_class_tracks_the_statistic_branch() {
        let bitwave = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        assert_eq!(bits_per_mac_class(&bitwave), "bit-column/synced");
        let mut unsynced = bitwave.clone();
        unsynced.sync_lanes = 1;
        assert_eq!(bits_per_mac_class(&unsynced), "bit-column/mean");
        assert_eq!(
            bits_per_mac_class(&AcceleratorSpec::dense()),
            "bit-column/dense"
        );
        // Two sync granularities above 1 share one class: the compute part
        // reads the same profile statistic either way.
        let mut s8 = bitwave.clone();
        s8.sync_lanes = 8;
        let mut s16 = bitwave;
        s16.sync_lanes = 16;
        assert_eq!(bits_per_mac_class(&s8), bits_per_mac_class(&s16));
    }

    #[test]
    #[should_panic(expected = "one sparsity profile per layer")]
    fn mismatched_profile_count_panics() {
        let net = resnet18();
        let _ = evaluate_network(
            &AcceleratorSpec::dense(),
            &net,
            &[],
            &MemoryHierarchy::bitwave_default(),
            &EnergyModel::finfet_16nm(),
        );
    }
}
