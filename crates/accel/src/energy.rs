//! Unit-energy model (STEP 4, Eq. 4).
//!
//! "All unit costs were derived from synthesis results corresponding to
//! 16 nm technology, except for the DRAM access energy, which was sourced
//! from the open-source tool DRAMPower."  We encode representative 16 nm
//! per-access energies; the absolute values matter less than their ratios
//! (DRAM ≫ SRAM ≫ register ≫ MAC), which set the shape of Figs. 15–17.

use serde::{Deserialize, Serialize};

/// Per-operation energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one 8×8 bit-parallel MAC.
    pub mac_8x8_pj: f64,
    /// Energy of one 1b×8b bit-serial multiply-accumulate step
    /// (traditional bit-serial PE, with per-lane shifter/accumulator).
    pub mac_bit_serial_pj: f64,
    /// Energy of one 1b×8b bit-column-serial step (BitWave BCE lane,
    /// add-then-shift shares the shifter across the column).
    pub mac_bit_column_pj: f64,
    /// Energy per byte read from on-chip SRAM.
    pub sram_read_pj_per_byte: f64,
    /// Energy per byte written to on-chip SRAM.
    pub sram_write_pj_per_byte: f64,
    /// Energy per register-file access (one operand).
    pub reg_access_pj: f64,
    /// Energy per byte transferred to/from off-chip DRAM (DDR3, DRAMPower).
    pub dram_pj_per_byte: f64,
}

impl EnergyModel {
    /// The 16 nm FinFET unit energies used throughout the reproduction.
    ///
    /// Ratios follow Table IV (bit-serial lanes cost ≈2.7× a bit-parallel
    /// MAC for the same work; bit-column-serial lanes ≈0.8×) and the usual
    /// 16 nm memory-hierarchy energy ladder (register ≪ SRAM ≪ DRAM).
    pub fn finfet_16nm() -> Self {
        Self {
            mac_8x8_pj: 0.20,
            // Eight 1b×8b bit-serial steps replace one 8×8 MAC at ~2.7× the
            // energy → 0.20 * 2.68 / 8 per step.
            mac_bit_serial_pj: 0.067,
            // Bit-column-serial: ~0.80× of the bit-parallel energy per 8 steps.
            mac_bit_column_pj: 0.020,
            sram_read_pj_per_byte: 1.25,
            sram_write_pj_per_byte: 1.45,
            reg_access_pj: 0.03,
            dram_pj_per_byte: 80.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::finfet_16nm()
    }
}

/// Energy of one layer or one network broken down by component (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC / datapath energy in pJ.
    pub compute_pj: f64,
    /// On-chip SRAM energy in pJ.
    pub sram_pj: f64,
    /// Register-file energy in pJ.
    pub register_pj: f64,
    /// Off-chip DRAM energy in pJ.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.register_pj + self.dram_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Fraction of the total contributed by DRAM (the dominant term for
    /// weight-heavy networks, Fig. 16).
    pub fn dram_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.dram_pj / total
        }
    }

    /// Component-wise sum.
    pub fn accumulate(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + other.compute_pj,
            sram_pj: self.sram_pj + other.sram_pj,
            register_pj: self.register_pj + other.register_pj,
            dram_pj: self.dram_pj + other.dram_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_energy_ladder_is_ordered() {
        let m = EnergyModel::finfet_16nm();
        assert!(m.reg_access_pj < m.sram_read_pj_per_byte);
        assert!(m.sram_read_pj_per_byte < m.dram_pj_per_byte);
        assert!(m.mac_bit_column_pj < m.mac_bit_serial_pj);
        assert_eq!(EnergyModel::default(), m);
    }

    #[test]
    fn bit_serial_vs_parallel_energy_ratio_matches_table4() {
        let m = EnergyModel::finfet_16nm();
        // 8 bit-serial steps vs one 8x8 MAC: ~2.7x (Table IV power ratio).
        let ratio = 8.0 * m.mac_bit_serial_pj / m.mac_8x8_pj;
        assert!((2.0..3.5).contains(&ratio), "ratio {ratio}");
        // 8 bit-column-serial steps vs one 8x8 MAC: ~0.8x.
        let bc_ratio = 8.0 * m.mac_bit_column_pj / m.mac_8x8_pj;
        assert!((0.6..1.0).contains(&bc_ratio), "ratio {bc_ratio}");
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            register_pj: 0.5,
            dram_pj: 6.5,
        };
        assert_eq!(a.total_pj(), 10.0);
        assert!((a.dram_fraction() - 0.65).abs() < 1e-12);
        let b = a.accumulate(&a);
        assert_eq!(b.total_pj(), 20.0);
        assert_eq!(EnergyBreakdown::default().dram_fraction(), 0.0);
        assert!((a.total_mj() - 1e-8).abs() < 1e-20);
    }
}
