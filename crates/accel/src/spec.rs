//! Accelerator specifications (Fig. 12 right).
//!
//! All accelerators are normalised to an equivalent compute budget — 512
//! 8b×8b bit-parallel PEs or 4096 1b×8b bit-serial lanes — and the common
//! 256 KB + 256 KB SRAM hierarchy, exactly as the paper's comparison
//! methodology requires ("all systems should be compared with an equivalent
//! number of processing elements, and memory hierarchy").

use bitwave_dataflow::su::{baseline_su, SpatialUnrolling};
use bitwave_dataflow::{DramSpec, SuSet};
use serde::{Serialize, Value};

/// The accelerators modelled in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AcceleratorKind {
    /// Dense bit-parallel reference with the fixed `[Ku=64, Cu=64]` mapping.
    Dense,
    /// HUAA: bit-parallel, dynamic dataflow, no sparsity handling.
    Huaa,
    /// Stripes: bit-serial, no bit-level sparsity skipping.
    Stripes,
    /// Pragmatic: bit-serial, skips zero weight bits (two's complement).
    Pragmatic,
    /// SCNN: bit-parallel, skips zero weight *and* activation values,
    /// ZRE-compressed weights.
    Scnn,
    /// Bitlet: bit-interleaved weight-bit-sparsity accelerator.
    Bitlet,
    /// BitWave (this paper): bit-column-serial, dynamic dataflow,
    /// sign-magnitude BCS compression, optional Bit-Flip.
    BitWave,
}

impl AcceleratorKind {
    /// Display name used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            AcceleratorKind::Dense => "Dense",
            AcceleratorKind::Huaa => "HUAA",
            AcceleratorKind::Stripes => "Stripes",
            AcceleratorKind::Pragmatic => "Pragmatic",
            AcceleratorKind::Scnn => "SCNN",
            AcceleratorKind::Bitlet => "Bitlet",
            AcceleratorKind::BitWave => "BitWave",
        }
    }
}

/// How the PE datapath processes operand bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PeStyle {
    /// Full 8×8 multipliers, one MAC per PE per cycle.
    BitParallel,
    /// 1b×8b multipliers, weights streamed bit-serially (8 cycles per dense
    /// MAC), possibly skipping zero bits.
    BitSerial,
    /// BitWave's bit-column-serial datapath: 1b×8b sign-magnitude multipliers
    /// sharing one shifter per group, skipping zero bit-columns.
    BitColumnSerial,
}

/// Which sparsity an accelerator can exploit to skip compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct SparsitySupport {
    /// Skips zero-valued weights.
    pub weight_value: bool,
    /// Skips zero-valued activations.
    pub activation_value: bool,
    /// Skips zero weight bits (two's complement).
    pub weight_bit: bool,
    /// Skips zero weight bit-columns (sign-magnitude, BitWave).
    pub weight_bit_column: bool,
}

/// Weight compression applied to DRAM/SRAM weight traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WeightCompression {
    /// Uncompressed Int8 weights.
    None,
    /// Zero run-length encoding (SCNN).
    Zre,
    /// BitWave's bit-column-sparsity compression.
    Bcs,
}

/// Which of BitWave's incremental optimisations are enabled — the Fig. 13
/// breakdown steps (Dense → +DF → +SM → +BF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BitwaveOptimizations {
    /// Dynamic dataflow (per-layer SU selection).
    pub dynamic_dataflow: bool,
    /// Sign-magnitude bit-column-serial compute and BCS compression.
    pub sign_magnitude_bcs: bool,
    /// Bit-Flip post-training enhancement.
    pub bit_flip: bool,
}

impl BitwaveOptimizations {
    /// All optimisations on (the full "BitWave+DF+SM+BF" configuration).
    pub fn all() -> Self {
        Self {
            dynamic_dataflow: true,
            sign_magnitude_bcs: true,
            bit_flip: true,
        }
    }

    /// Only dynamic dataflow (Fig. 13 "DF").
    pub fn dataflow_only() -> Self {
        Self {
            dynamic_dataflow: true,
            sign_magnitude_bcs: false,
            bit_flip: false,
        }
    }

    /// Dynamic dataflow + sign-magnitude BCS (Fig. 13 "DF+SM").
    pub fn dataflow_sm() -> Self {
        Self {
            dynamic_dataflow: true,
            sign_magnitude_bcs: true,
            bit_flip: false,
        }
    }
}

/// A complete accelerator configuration for the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Which accelerator this is.
    pub kind: AcceleratorKind,
    /// Display label (lets several BitWave variants coexist in one figure).
    pub label: String,
    /// Datapath style.
    pub pe_style: PeStyle,
    /// Selectable spatial unrollings (one entry for fixed-dataflow machines).
    pub su_set: SuSet,
    /// Sparsity skipping capabilities.
    pub sparsity: SparsitySupport,
    /// Weight compression scheme for memory traffic.
    pub compression: WeightCompression,
    /// Number of lanes that must stay bit-synchronised when skipping zero
    /// bits (drives the load-imbalance penalty of Pragmatic/Bitlet; 1 means
    /// no synchronisation constraint).
    pub sync_lanes: usize,
    /// DRAM bandwidth in bits per cycle.
    pub dram_bandwidth_bits: usize,
    /// On-chip activation SRAM bandwidth in bits per cycle.
    pub act_sram_bandwidth_bits: usize,
    /// On-chip weight SRAM bandwidth in bits per cycle.
    pub weight_sram_bandwidth_bits: usize,
    /// BitWave-only optimisation toggles (ignored by other kinds).
    pub bitwave_opts: BitwaveOptimizations,
    /// The DRAM tier.  [`DramSpec::unconstrained`] (the default everywhere)
    /// keeps the legacy additive Eq. 5 cost with `dram_bandwidth_bits`
    /// above; a [constrained](DramSpec::constrained) tier supersedes that
    /// field and switches each layer to the roofline
    /// `max(cycle_compute, cycle_dram)` with boundedness reporting.
    pub dram: DramSpec,
}

/// Hand-written so the `dram` field is **omitted** from the canonical JSON
/// while the tier is unconstrained: every digest that embeds a spec — DSE
/// memo keys, sweep identities, report content digests — stays byte-stable
/// for existing configurations, and only genuinely throttled specs address
/// new cache entries.
impl Serialize for AcceleratorSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("label".to_string(), self.label.to_value()),
            ("pe_style".to_string(), self.pe_style.to_value()),
            ("su_set".to_string(), self.su_set.to_value()),
            ("sparsity".to_string(), self.sparsity.to_value()),
            ("compression".to_string(), self.compression.to_value()),
            ("sync_lanes".to_string(), self.sync_lanes.to_value()),
            (
                "dram_bandwidth_bits".to_string(),
                self.dram_bandwidth_bits.to_value(),
            ),
            (
                "act_sram_bandwidth_bits".to_string(),
                self.act_sram_bandwidth_bits.to_value(),
            ),
            (
                "weight_sram_bandwidth_bits".to_string(),
                self.weight_sram_bandwidth_bits.to_value(),
            ),
            ("bitwave_opts".to_string(), self.bitwave_opts.to_value()),
        ];
        if self.dram.is_constrained() {
            fields.push(("dram".to_string(), self.dram.to_value()));
        }
        Value::Object(fields)
    }
}

/// An accelerator name that [`AcceleratorSpec::by_name`] could not resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAcceleratorError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownAcceleratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown accelerator `{}` (known accelerators: {})",
            self.name,
            AcceleratorSpec::REGISTRY_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownAcceleratorError {}

/// Peak equivalent 8b×8b MAC throughput shared by every modelled accelerator
/// (512 PEs, Section IV-C).
pub const EQUIVALENT_BIT_PARALLEL_PES: usize = 512;

/// Bit-serial lane count equivalent to [`EQUIVALENT_BIT_PARALLEL_PES`].
pub const BIT_SERIAL_LANES: usize = 4096;

impl AcceleratorSpec {
    /// True when evaluating this machine reads the value-codec (ZRE/CSR)
    /// compression ratios of a layer's sparsity profile.  Only the
    /// ZRE-compressed SotA baseline (SCNN) does; every BitWave configuration
    /// and the bit-serial baselines run off the eagerly-computed core
    /// profile, so [`crate::sparsity::LayerAnalysis`] defers the value-codec
    /// passes until a machine with this flag asks.
    pub fn needs_value_codec_ratios(&self) -> bool {
        self.compression == WeightCompression::Zre
    }

    fn common(kind: AcceleratorKind, pe_style: PeStyle, su_set: SuSet) -> Self {
        Self {
            label: kind.name().to_string(),
            kind,
            pe_style,
            su_set,
            sparsity: SparsitySupport::default(),
            compression: WeightCompression::None,
            sync_lanes: 1,
            dram_bandwidth_bits: 64,
            act_sram_bandwidth_bits: 1024,
            weight_sram_bandwidth_bits: 1024,
            bitwave_opts: BitwaveOptimizations {
                dynamic_dataflow: false,
                sign_magnitude_bcs: false,
                bit_flip: false,
            },
            dram: DramSpec::unconstrained(),
        }
    }

    /// The dense reference of Fig. 13: the BitWave array with the fixed
    /// `[Ku=64, Cu=64]` mapping and none of the paper's optimisations
    /// enabled (all 8 bit columns are processed, weights uncompressed).
    pub fn dense() -> Self {
        Self::common(
            AcceleratorKind::Dense,
            PeStyle::BitColumnSerial,
            SuSet::dense(),
        )
    }

    /// HUAA: dense bit-parallel (512 8×8 PEs) with dynamic dataflow.
    pub fn huaa() -> Self {
        let set = SuSet {
            name: "HUAA".to_string(),
            options: vec![
                baseline_su::XY_512,
                baseline_su::CK_512,
                baseline_su::XFX_512,
                SpatialUnrolling::cxk("HUAA-K64", 8, 1, 64),
                SpatialUnrolling {
                    name: "HUAA-DW",
                    c: 1,
                    k: 1,
                    ox: 8,
                    oy: 1,
                    fx: 1,
                    fy: 1,
                    g: 64,
                },
            ],
        };
        Self::common(AcceleratorKind::Huaa, PeStyle::BitParallel, set)
    }

    /// Stripes: bit-serial, sparsity-unaware.
    pub fn stripes() -> Self {
        Self::common(
            AcceleratorKind::Stripes,
            PeStyle::BitSerial,
            SuSet::fixed(baseline_su::CK_4096),
        )
    }

    /// Pragmatic: bit-serial with zero-weight-bit skipping.
    pub fn pragmatic() -> Self {
        let mut spec = Self::common(
            AcceleratorKind::Pragmatic,
            PeStyle::BitSerial,
            SuSet::fixed(baseline_su::CK_4096),
        );
        spec.sparsity.weight_bit = true;
        // 16 serial lanes share one bit scheduler and must sync.
        spec.sync_lanes = 16;
        spec
    }

    /// SCNN: value-sparsity aware with ZRE-compressed weights.
    pub fn scnn() -> Self {
        let mut spec = Self::common(
            AcceleratorKind::Scnn,
            PeStyle::BitParallel,
            SuSet::fixed(SpatialUnrolling {
                // SCNN's cartesian-product dataflow: 4 weights (different K)
                // x 4 activations (different output positions) per PE,
                // 32 PEs tiling the output map.
                name: "SCNN-IxF",
                c: 1,
                k: 4,
                ox: 16,
                oy: 8,
                fx: 1,
                fy: 1,
                g: 1,
            }),
        );
        spec.sparsity.weight_value = true;
        spec.sparsity.activation_value = true;
        spec.compression = WeightCompression::Zre;
        spec
    }

    /// Bitlet: bit-interleaving weight-bit-sparsity accelerator.
    pub fn bitlet() -> Self {
        let mut spec = Self::common(
            AcceleratorKind::Bitlet,
            PeStyle::BitSerial,
            SuSet::fixed(baseline_su::CK_4096),
        );
        spec.sparsity.weight_bit = true;
        // Bitlet interleaves bits across 64 lanes that fill a common pipeline.
        spec.sync_lanes = 64;
        spec
    }

    /// BitWave with a chosen subset of its optimisations (Fig. 13 steps).
    pub fn bitwave(opts: BitwaveOptimizations) -> Self {
        let su_set = if opts.dynamic_dataflow {
            SuSet::bitwave()
        } else {
            SuSet::dense()
        };
        let mut spec = Self::common(AcceleratorKind::BitWave, PeStyle::BitColumnSerial, su_set);
        // Eight groups share one packed 64-bit weight segment and therefore
        // one column schedule (Fig. 10).
        spec.sync_lanes = 8;
        spec.label = match (
            opts.dynamic_dataflow,
            opts.sign_magnitude_bcs,
            opts.bit_flip,
        ) {
            (true, true, true) => "BitWave+DF+SM+BF".to_string(),
            (true, true, false) => "BitWave+DF+SM".to_string(),
            (true, false, false) => "BitWave+DF".to_string(),
            _ => "BitWave".to_string(),
        };
        spec.sparsity.weight_bit_column = opts.sign_magnitude_bcs;
        spec.compression = if opts.sign_magnitude_bcs {
            WeightCompression::Bcs
        } else {
            WeightCompression::None
        };
        spec.bitwave_opts = opts;
        spec
    }

    /// Canonical registry names resolvable by [`AcceleratorSpec::by_name`],
    /// in the order `GET /v1/accelerators` lists them: the six comparison
    /// machines plus the three incremental BitWave ablation steps.
    pub const REGISTRY_NAMES: [&'static str; 9] = [
        "dense",
        "huaa",
        "stripes",
        "pragmatic",
        "scnn",
        "bitlet",
        "bitwave",
        "bitwave-df",
        "bitwave-df-sm",
    ];

    /// Looks an accelerator configuration up by its canonical registry name.
    ///
    /// Matching is case-insensitive and treats `_`, `+` and `-` as
    /// equivalent, so `BitWave+DF+SM`, `bitwave-df-sm` and `bitwave_df_sm`
    /// all resolve.  `bitwave` is the fully optimised configuration
    /// (`BitWave+DF+SM+BF`).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownAcceleratorError`] (listing the known names) when
    /// the name does not resolve.
    pub fn by_name(name: &str) -> Result<AcceleratorSpec, UnknownAcceleratorError> {
        let canonical: String = name
            .trim()
            .chars()
            .map(|c| match c {
                '_' | '+' => '-',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match canonical.as_str() {
            "dense" => Ok(Self::dense()),
            "huaa" => Ok(Self::huaa()),
            "stripes" => Ok(Self::stripes()),
            "pragmatic" => Ok(Self::pragmatic()),
            "scnn" => Ok(Self::scnn()),
            "bitlet" => Ok(Self::bitlet()),
            "bitwave" | "bitwave-df-sm-bf" => Ok(Self::bitwave(BitwaveOptimizations::all())),
            "bitwave-df" => Ok(Self::bitwave(BitwaveOptimizations::dataflow_only())),
            "bitwave-df-sm" => Ok(Self::bitwave(BitwaveOptimizations::dataflow_sm())),
            _ => Err(UnknownAcceleratorError {
                name: name.to_string(),
            }),
        }
    }

    /// The full comparison set of Fig. 14/15/17, in plotting order.
    pub fn sota_comparison_set() -> Vec<AcceleratorSpec> {
        vec![
            Self::scnn(),
            Self::stripes(),
            Self::pragmatic(),
            Self::bitlet(),
            Self::huaa(),
            Self::bitwave(BitwaveOptimizations::all()),
        ]
    }

    /// Equivalent peak 8b×8b MACs per cycle of the machine (the same for all
    /// modelled accelerators by construction).
    pub fn peak_equivalent_macs_per_cycle(&self) -> usize {
        EQUIVALENT_BIT_PARALLEL_PES
    }

    /// True if the datapath needs multiple cycles per dense 8-bit MAC.
    pub fn is_bit_serial(&self) -> bool {
        matches!(self.pe_style, PeStyle::BitSerial | PeStyle::BitColumnSerial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_kinds() {
        assert_eq!(AcceleratorKind::BitWave.name(), "BitWave");
        assert_eq!(AcceleratorKind::Scnn.name(), "SCNN");
        assert_eq!(AcceleratorSpec::dense().label, "Dense");
        assert_eq!(
            AcceleratorSpec::bitwave(BitwaveOptimizations::all()).label,
            "BitWave+DF+SM+BF"
        );
        assert_eq!(
            AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_only()).label,
            "BitWave+DF"
        );
    }

    #[test]
    fn sparsity_capabilities_match_the_paper_table() {
        assert!(AcceleratorSpec::scnn().sparsity.weight_value);
        assert!(AcceleratorSpec::scnn().sparsity.activation_value);
        assert!(!AcceleratorSpec::scnn().sparsity.weight_bit);
        assert!(AcceleratorSpec::pragmatic().sparsity.weight_bit);
        assert!(AcceleratorSpec::bitlet().sparsity.weight_bit);
        assert!(!AcceleratorSpec::stripes().sparsity.weight_bit);
        assert!(
            AcceleratorSpec::bitwave(BitwaveOptimizations::all())
                .sparsity
                .weight_bit_column
        );
        assert!(
            !AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_only())
                .sparsity
                .weight_bit_column
        );
    }

    #[test]
    fn compression_assignment() {
        assert_eq!(AcceleratorSpec::scnn().compression, WeightCompression::Zre);
        assert_eq!(
            AcceleratorSpec::bitwave(BitwaveOptimizations::all()).compression,
            WeightCompression::Bcs
        );
        assert_eq!(
            AcceleratorSpec::stripes().compression,
            WeightCompression::None
        );
    }

    #[test]
    fn dynamic_dataflow_machines_have_multiple_sus() {
        assert!(AcceleratorSpec::huaa().su_set.options.len() > 1);
        assert!(
            AcceleratorSpec::bitwave(BitwaveOptimizations::all())
                .su_set
                .options
                .len()
                == 7
        );
        assert_eq!(AcceleratorSpec::stripes().su_set.options.len(), 1);
        assert_eq!(
            AcceleratorSpec::bitwave(BitwaveOptimizations {
                dynamic_dataflow: false,
                sign_magnitude_bcs: true,
                bit_flip: false
            })
            .su_set
            .options
            .len(),
            1
        );
    }

    #[test]
    fn comparison_set_order() {
        let set = AcceleratorSpec::sota_comparison_set();
        let names: Vec<&str> = set.iter().map(|s| s.kind.name()).collect();
        assert_eq!(
            names,
            vec!["SCNN", "Stripes", "Pragmatic", "Bitlet", "HUAA", "BitWave"]
        );
    }

    #[test]
    fn registry_resolves_every_canonical_name() {
        for name in AcceleratorSpec::REGISTRY_NAMES {
            assert!(
                AcceleratorSpec::by_name(name).is_ok(),
                "registry must resolve `{name}`"
            );
        }
    }

    #[test]
    fn registry_normalises_separators_and_case() {
        assert_eq!(
            AcceleratorSpec::by_name("BitWave+DF+SM").unwrap().label,
            "BitWave+DF+SM"
        );
        assert_eq!(
            AcceleratorSpec::by_name("bitwave_df").unwrap().label,
            "BitWave+DF"
        );
        assert_eq!(
            AcceleratorSpec::by_name("bitwave").unwrap().label,
            "BitWave+DF+SM+BF"
        );
        assert_eq!(AcceleratorSpec::by_name("SCNN").unwrap().label, "SCNN");
    }

    #[test]
    fn registry_rejects_unknown_names_with_the_known_list() {
        let err = AcceleratorSpec::by_name("eyeriss").unwrap_err();
        assert_eq!(err.name, "eyeriss");
        let msg = err.to_string();
        assert!(msg.contains("eyeriss") && msg.contains("bitwave-df-sm"));
    }

    #[test]
    fn unconstrained_spec_serializes_without_a_dram_key() {
        for name in AcceleratorSpec::REGISTRY_NAMES {
            let spec = AcceleratorSpec::by_name(name).unwrap();
            assert!(
                !spec.dram.is_constrained(),
                "`{name}` defaults unconstrained"
            );
            let json = serde_json::to_string(&spec).unwrap();
            assert!(
                !json.contains("\"dram\""),
                "`{name}` must omit the dram field at the unconstrained default: {json}"
            );
        }
    }

    #[test]
    fn constrained_spec_serializes_the_dram_tier_and_changes_the_bytes() {
        let baseline = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let mut throttled = baseline.clone();
        throttled.dram = DramSpec::constrained(32);
        let baseline_json = serde_json::to_string(&baseline).unwrap();
        let throttled_json = serde_json::to_string(&throttled).unwrap();
        assert_ne!(baseline_json, throttled_json);
        assert!(throttled_json.contains("\"dram\""));
        assert!(throttled_json.contains("\"bandwidth_bits\":32"));
        assert!(
            throttled_json.ends_with("}}"),
            "dram must be the last field"
        );
    }

    #[test]
    fn bit_serial_flags() {
        assert!(AcceleratorSpec::stripes().is_bit_serial());
        assert!(AcceleratorSpec::bitwave(BitwaveOptimizations::all()).is_bit_serial());
        assert!(!AcceleratorSpec::huaa().is_bit_serial());
        assert_eq!(
            AcceleratorSpec::dense().peak_equivalent_macs_per_cycle(),
            512
        );
    }
}
