//! STEP 2: per-layer sparsity statistics and compression ratios, including
//! the load-imbalance adjustment.
//!
//! The paper adjusts the raw sparsity statistics "to accommodate for load
//! imbalance in the runtime scheduled accelerators": a bit-serial lane that
//! skips zero bits still has to wait for the slowest lane in its
//! synchronisation group, so the *effective* number of processed bits per
//! weight is the expected maximum over the group rather than the mean.  We
//! compute those maxima directly from the (synthetic) weight tensors instead
//! of assuming a distribution.

use crate::spec::AcceleratorSpec;
use bitwave_core::compress::{BcsCodec, CsrCodec, WeightCodec, ZreCodec};
use bitwave_core::error::CoreError;
use bitwave_core::group::{extract_groups, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_tensor::bitplane::BitplaneTensor;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::handle::WeightHandle;
use bitwave_tensor::QuantTensor;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Synchronisation width assumed for Pragmatic's bit-serial lanes.
pub const PRAGMATIC_SYNC_LANES: usize = 16;
/// Synchronisation width assumed for Bitlet's bit-interleaving pipeline.
pub const BITLET_SYNC_LANES: usize = 64;
/// Number of weight groups that share one column schedule in BitWave
/// (one 64-bit packed segment holds 8 groups of 8 channels, Fig. 10).
pub const BITWAVE_SYNC_GROUPS: usize = 8;

/// Sparsity statistics of one layer as consumed by the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSparsityProfile {
    /// Fraction of zero-valued weights (`Sw`).
    pub weight_value_sparsity: f64,
    /// Fraction of zero-valued input activations (`Sa`).
    pub activation_value_sparsity: f64,
    /// Fraction of zero weight bits in two's complement (`Sw,b`).
    pub weight_bit_sparsity_tc: f64,
    /// Fraction of zero weight bits in sign-magnitude.
    pub weight_bit_sparsity_sm: f64,
    /// Group (column) size used for the BCS statistics.
    pub group_size: usize,
    /// Mean non-zero bit-columns per group (sign-magnitude, 0..=8).
    pub mean_nonzero_columns: f64,
    /// Mean over the layer of the *maximum* non-zero column count across the
    /// [`BITWAVE_SYNC_GROUPS`] groups processed in lockstep — the effective
    /// per-group cycle count before Bit-Flip balances the workload.
    pub max_nonzero_columns_synced: f64,
    /// Mean non-zero bits per weight in two's complement (0..=8).
    pub mean_nonzero_bits_tc: f64,
    /// Effective bits per weight for Pragmatic (max over 16 synced lanes).
    pub max_nonzero_bits_sync16: f64,
    /// Effective bits per weight for Bitlet (max over 64 synced lanes).
    pub max_nonzero_bits_sync64: f64,
    /// BCS weight compression ratio including index overhead.
    pub bcs_compression_ratio: f64,
    /// ZRE weight compression ratio including index overhead (SCNN).
    pub zre_compression_ratio: f64,
    /// CSR weight compression ratio including index overhead.
    pub csr_compression_ratio: f64,
}

impl LayerSparsityProfile {
    /// Analyses a weight tensor (plus the layer's expected activation value
    /// sparsity) at the given group size, including the eager ZRE/CSR
    /// value-codec passes.  The single-analysis pipeline path instead builds
    /// the profile from already-extracted parts
    /// ([`LayerSparsityProfile::from_shared_parts`]) and defers the
    /// value-codec passes behind a [`LayerAnalysis`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedRank`] for ungroupable weight tensors.
    pub fn from_weights(
        weights: &QuantTensor,
        activation_value_sparsity: f64,
        group_size: GroupSize,
    ) -> Result<Self, CoreError> {
        let groups = extract_groups(weights, group_size)?;
        let planes = groups.to_bitplanes();
        let stats = LayerSparsityStats::from_tensor_and_planes(weights, &planes);
        // CR is measured against the real (unpadded) weight storage, matching
        // the pipeline's CompressionSummary and the ZRE/CSR accounting; the
        // measured payload/index still reflect the padded tail groups.
        let bcs = BcsCodec::new(group_size, Encoding::SignMagnitude)
            .measure_packed(&planes, weights.data().len());
        Ok(Self::from_shared_parts(
            weights,
            activation_value_sparsity,
            &stats,
            &planes,
            bcs.compression_ratio_with_index(),
        )
        .with_value_codecs(weights))
    }

    /// Builds the profile from parts an earlier pass **already extracted** —
    /// the statistics, bitplane-packed groups and BCS compression ratio the
    /// pipeline's compress stage produced — so nothing is re-derived per
    /// stage.  The value-codec (ZRE/CSR) ratios are left at their dense
    /// placeholder of `1.0`; resolve them with
    /// [`LayerSparsityProfile::with_value_codecs`] or, lazily, through a
    /// [`LayerAnalysis`].
    ///
    /// `stats` and `planes` must come from the same `weights` tensor at the
    /// same group size; given that, the non-placeholder fields are identical
    /// to [`LayerSparsityProfile::from_weights`].
    pub fn from_shared_parts(
        weights: &QuantTensor,
        activation_value_sparsity: f64,
        stats: &LayerSparsityStats,
        planes: &BitplaneTensor,
        bcs_compression_ratio: f64,
    ) -> Self {
        // Non-zero columns per group (word-parallel indicator sums), and the
        // synced maximum over chunks of BITWAVE_SYNC_GROUPS groups.
        let column_counts = planes.group_nonzero_column_counts(Encoding::SignMagnitude);
        let mean_nonzero_columns = mean_u32(&column_counts);
        let max_nonzero_columns_synced = mean_of_chunk_max(&column_counts, BITWAVE_SYNC_GROUPS);

        // Non-zero bits per weight (two's complement) and their synced maxima.
        let bit_counts: Vec<u32> = weights
            .data()
            .iter()
            .map(|&w| (w as u8).count_ones())
            .collect();
        let mean_nonzero_bits_tc = mean_u32(&bit_counts);
        let max_nonzero_bits_sync16 = mean_of_chunk_max(&bit_counts, PRAGMATIC_SYNC_LANES);
        let max_nonzero_bits_sync64 = mean_of_chunk_max(&bit_counts, BITLET_SYNC_LANES);

        Self {
            weight_value_sparsity: stats.value_sparsity,
            activation_value_sparsity: activation_value_sparsity.clamp(0.0, 1.0),
            weight_bit_sparsity_tc: stats.bit_sparsity_twos_complement,
            weight_bit_sparsity_sm: stats.bit_sparsity_sign_magnitude,
            group_size: planes.group_size(),
            mean_nonzero_columns,
            max_nonzero_columns_synced,
            mean_nonzero_bits_tc,
            max_nonzero_bits_sync16,
            max_nonzero_bits_sync64,
            bcs_compression_ratio,
            zre_compression_ratio: 1.0,
            csr_compression_ratio: 1.0,
        }
    }

    /// Resolves the ZRE/CSR value-codec compression ratios (the two passes
    /// only the SCNN baseline consumes) from the weight tensor.
    pub fn with_value_codecs(mut self, weights: &QuantTensor) -> Self {
        let (zre, csr) = value_codec_ratios(weights);
        self.zre_compression_ratio = zre;
        self.csr_compression_ratio = csr;
        self
    }

    /// A fully dense profile (no sparsity anywhere) — the behaviour every
    /// accelerator degenerates to on incompressible weights.
    pub fn dense(group_size: usize) -> Self {
        Self {
            weight_value_sparsity: 0.0,
            activation_value_sparsity: 0.0,
            weight_bit_sparsity_tc: 0.0,
            weight_bit_sparsity_sm: 0.0,
            group_size,
            mean_nonzero_columns: 8.0,
            max_nonzero_columns_synced: 8.0,
            mean_nonzero_bits_tc: 8.0,
            max_nonzero_bits_sync16: 8.0,
            max_nonzero_bits_sync64: 8.0,
            bcs_compression_ratio: 1.0,
            zre_compression_ratio: 1.0,
            csr_compression_ratio: 1.0,
        }
    }
}

/// ZRE and CSR compression ratios (index included) of a weight tensor.
///
/// These are the per-tensor passes only the value-sparsity SotA baselines
/// consume; the pipeline computes them lazily via [`LayerAnalysis`].
pub fn value_codec_ratios(weights: &QuantTensor) -> (f64, f64) {
    let data = weights.data();
    let zre = ZreCodec::default().compress(data);
    let csr = CsrCodec::new(weights.shape().dim(weights.shape().rank() - 1).max(2)).compress(data);
    (
        zre.compression_ratio_with_index(),
        csr.compression_ratio_with_index(),
    )
}

/// One layer's shared sparsity analysis: the eagerly-computed core profile
/// (everything the BitWave configurations and the bit-serial baselines read)
/// plus the weight handle needed to resolve the value-codec (ZRE/CSR) ratios
/// **lazily** — they run only when a value-sparsity baseline (SCNN) actually
/// evaluates the layer, and at most once per layer even when many
/// accelerators share the analysis across threads.
#[derive(Debug)]
pub struct LayerAnalysis {
    core: LayerSparsityProfile,
    weights: WeightHandle,
    full: OnceLock<LayerSparsityProfile>,
}

impl LayerAnalysis {
    /// Builds the analysis from parts an earlier pass already extracted (see
    /// [`LayerSparsityProfile::from_shared_parts`]); the weight handle is
    /// shared, not copied.
    pub fn from_shared_parts(
        weights: WeightHandle,
        activation_value_sparsity: f64,
        stats: &LayerSparsityStats,
        planes: &BitplaneTensor,
        bcs_compression_ratio: f64,
    ) -> Self {
        let core = LayerSparsityProfile::from_shared_parts(
            &weights,
            activation_value_sparsity,
            stats,
            planes,
            bcs_compression_ratio,
        );
        Self {
            core,
            weights,
            full: OnceLock::new(),
        }
    }

    /// Builds the analysis directly from a weight handle, extracting groups
    /// and statistics itself (used outside the pipeline's shared path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedRank`] for ungroupable weight tensors.
    pub fn from_weights(
        weights: WeightHandle,
        activation_value_sparsity: f64,
        group_size: GroupSize,
    ) -> Result<Self, CoreError> {
        let groups = extract_groups(&weights, group_size)?;
        let planes = groups.to_bitplanes();
        let stats = LayerSparsityStats::from_tensor_and_planes(&weights, &planes);
        let bcs = BcsCodec::new(group_size, Encoding::SignMagnitude)
            .measure_packed(&planes, weights.data().len());
        Ok(Self::from_shared_parts(
            weights,
            activation_value_sparsity,
            &stats,
            &planes,
            bcs.compression_ratio_with_index(),
        ))
    }

    /// The analysed weights.
    pub fn weights(&self) -> &WeightHandle {
        &self.weights
    }

    /// The eager core profile; its `zre_compression_ratio` /
    /// `csr_compression_ratio` fields hold the dense placeholder `1.0`.
    pub fn core_profile(&self) -> &LayerSparsityProfile {
        &self.core
    }

    /// The full profile including the ZRE/CSR ratios, computing them on
    /// first call (thread-safe, at most once).
    pub fn full_profile(&self) -> &LayerSparsityProfile {
        self.full
            .get_or_init(|| self.core.with_value_codecs(&self.weights))
    }

    /// Whether the lazy value-codec passes have run (diagnostics/tests).
    pub fn value_codecs_computed(&self) -> bool {
        self.full.get().is_some()
    }

    /// The profile `spec`'s evaluation needs: the full profile for machines
    /// that read value-codec ratios (SCNN), the cheap core profile otherwise.
    pub fn profile_for(&self, spec: &AcceleratorSpec) -> &LayerSparsityProfile {
        if spec.needs_value_codec_ratios() {
            self.full_profile()
        } else {
            self.core_profile()
        }
    }
}

impl Clone for LayerAnalysis {
    fn clone(&self) -> Self {
        let full = OnceLock::new();
        if let Some(profile) = self.full.get() {
            let _ = full.set(*profile);
        }
        Self {
            core: self.core,
            weights: self.weights.clone(),
            full,
        }
    }
}

impl PartialEq for LayerAnalysis {
    /// Equality over the analysis *inputs and eager results* (core profile
    /// and weights); whether the lazy codecs have been resolved yet is not an
    /// observable difference.
    fn eq(&self, other: &Self) -> bool {
        self.core == other.core && self.weights == other.weights
    }
}

fn mean_u32(values: &[u32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| f64::from(v)).sum::<f64>() / values.len() as f64
}

/// Mean of per-chunk maxima: the effective per-item cost when `chunk` items
/// are processed in lockstep and the slowest one gates the group.
fn mean_of_chunk_max(values: &[u32], chunk: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let chunk = chunk.max(1);
    let mut total = 0.0f64;
    let mut chunks = 0usize;
    for c in values.chunks(chunk) {
        total += f64::from(*c.iter().max().expect("non-empty chunk"));
        chunks += 1;
    }
    total / chunks as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::{bert_base, resnet18};
    use bitwave_dnn::weights::generate_layer_sample;

    fn resnet_profile() -> LayerSparsityProfile {
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let w = generate_layer_sample(layer, 3, 60_000);
        LayerSparsityProfile::from_weights(&w, layer.expected_activation_sparsity(), GroupSize::G8)
            .unwrap()
    }

    #[test]
    fn profile_fields_are_consistent() {
        let p = resnet_profile();
        assert!(p.weight_value_sparsity < p.weight_bit_sparsity_tc);
        assert!(p.weight_bit_sparsity_sm > p.weight_bit_sparsity_tc);
        assert!((0.0..=8.0).contains(&p.mean_nonzero_columns));
        // Synced maxima are never better than the mean.
        assert!(p.max_nonzero_columns_synced >= p.mean_nonzero_columns);
        assert!(p.max_nonzero_bits_sync16 >= p.mean_nonzero_bits_tc);
        assert!(p.max_nonzero_bits_sync64 >= p.max_nonzero_bits_sync16);
        assert!(p.bcs_compression_ratio > 1.0);
        assert_eq!(p.activation_value_sparsity, 0.5);
        assert_eq!(p.group_size, 8);
    }

    #[test]
    fn bcs_outcompresses_value_codecs_on_low_value_sparsity_layers() {
        // The Fig. 5 observation: with little value sparsity, BCS wins.
        let p = resnet_profile();
        assert!(p.weight_value_sparsity < 0.4);
        assert!(p.bcs_compression_ratio > p.zre_compression_ratio);
        assert!(p.bcs_compression_ratio > p.csr_compression_ratio);
    }

    #[test]
    fn bert_profile_has_little_column_sparsity() {
        let net = bert_base();
        let layer = net.layer("bert.encoder.layer.5.attention.v").unwrap();
        let w = generate_layer_sample(layer, 3, 60_000);
        let p = LayerSparsityProfile::from_weights(&w, 0.0, GroupSize::G8).unwrap();
        assert!(
            p.mean_nonzero_columns > 6.0,
            "got {}",
            p.mean_nonzero_columns
        );
        assert!(p.bcs_compression_ratio < 1.4);
        assert_eq!(p.activation_value_sparsity, 0.0);
    }

    #[test]
    fn dense_profile_is_neutral() {
        let p = LayerSparsityProfile::dense(16);
        assert_eq!(p.mean_nonzero_columns, 8.0);
        assert_eq!(p.bcs_compression_ratio, 1.0);
        assert_eq!(p.weight_value_sparsity, 0.0);
        assert_eq!(p.group_size, 16);
    }

    #[test]
    fn chunk_max_helpers() {
        assert_eq!(mean_u32(&[]), 0.0);
        assert_eq!(mean_of_chunk_max(&[], 4), 0.0);
        assert_eq!(mean_u32(&[2, 4, 6]), 4.0);
        // Chunks of 2: max(1,5)=5, max(2,2)=2 -> mean 3.5.
        assert_eq!(mean_of_chunk_max(&[1, 5, 2, 2], 2), 3.5);
        // Chunk of 1 degenerates to the mean.
        assert_eq!(mean_of_chunk_max(&[1, 5, 2, 2], 1), 2.5);
    }

    #[test]
    fn shared_parts_profile_equals_from_weights() {
        // The single-pass path: stats/groups/BCS extracted once (as the
        // pipeline's compress stage does) must yield exactly the profile the
        // monolithic constructor computes on the same tensor.
        let net = resnet18();
        for (layer_name, g) in [("layer3.0.conv1", GroupSize::G8), ("fc", GroupSize::G16)] {
            let layer = net.layer(layer_name).unwrap();
            let w = generate_layer_sample(layer, 3, 20_000);
            let act = layer.expected_activation_sparsity();
            let eager = LayerSparsityProfile::from_weights(&w, act, g).unwrap();

            let groups = bitwave_core::group::extract_groups(&w, g).unwrap();
            let planes = groups.to_bitplanes();
            let stats = LayerSparsityStats::from_tensor_and_groups(&w, &groups);
            let bcs = BcsCodec::new(g, Encoding::SignMagnitude)
                .compress_groups(groups.iter(), w.data().len());
            let shared = LayerSparsityProfile::from_shared_parts(
                &w,
                act,
                &stats,
                &planes,
                bcs.compression_ratio_with_index(),
            );
            // Core fields are bit-identical; value codecs are placeholders...
            assert_eq!(shared.zre_compression_ratio, 1.0);
            assert_eq!(shared.csr_compression_ratio, 1.0);
            // ...until resolved, after which the whole profile matches.
            assert_eq!(shared.with_value_codecs(&w), eager);
        }
    }

    #[test]
    fn layer_analysis_resolves_value_codecs_lazily_and_once() {
        use crate::spec::{AcceleratorSpec, BitwaveOptimizations};
        use bitwave_tensor::handle::WeightHandle;
        let net = resnet18();
        let layer = net.layer("layer3.0.conv1").unwrap();
        let w = generate_layer_sample(layer, 3, 20_000);
        let act = layer.expected_activation_sparsity();
        let eager = LayerSparsityProfile::from_weights(&w, act, GroupSize::G8).unwrap();

        let analysis =
            LayerAnalysis::from_weights(WeightHandle::new(w), act, GroupSize::G8).unwrap();
        assert!(!analysis.value_codecs_computed());

        // BitWave and the bit-serial machines read the core profile only.
        let bitwave = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        assert!(!bitwave.needs_value_codec_ratios());
        let core = analysis.profile_for(&bitwave);
        assert_eq!(core.bcs_compression_ratio, eager.bcs_compression_ratio);
        assert_eq!(core.zre_compression_ratio, 1.0);
        assert!(!analysis.value_codecs_computed());

        // SCNN triggers the lazy ZRE/CSR passes; the result matches the
        // eager constructor exactly.
        let scnn = AcceleratorSpec::scnn();
        assert!(scnn.needs_value_codec_ratios());
        let full = analysis.profile_for(&scnn);
        assert_eq!(*full, eager);
        assert!(analysis.value_codecs_computed());

        // Clones preserve equality and the resolved state is carried over.
        let clone = analysis.clone();
        assert_eq!(clone, analysis);
        assert!(clone.value_codecs_computed());
        assert_eq!(*clone.full_profile(), eager);
    }

    #[test]
    fn bitflipped_weights_reduce_synced_column_count() {
        use bitwave_core::bitflip::flip_tensor;
        let net = resnet18();
        let layer = net.layer("layer4.0.conv1").unwrap();
        let w = generate_layer_sample(layer, 3, 60_000);
        let before = LayerSparsityProfile::from_weights(&w, 0.5, GroupSize::G16).unwrap();
        let (flipped, _) = flip_tensor(&w, GroupSize::G16, 5, Encoding::SignMagnitude).unwrap();
        let after = LayerSparsityProfile::from_weights(&flipped, 0.5, GroupSize::G16).unwrap();
        assert!(after.max_nonzero_columns_synced <= 3.0 + 1e-9);
        assert!(after.max_nonzero_columns_synced < before.max_nonzero_columns_synced);
        assert!(after.bcs_compression_ratio > before.bcs_compression_ratio);
    }
}
