//! Area, power and technology constants (Fig. 18, Tables III and IV).
//!
//! These numbers come from the paper's 16 nm synthesis results (for BitWave)
//! and from the cited publications (for the comparison accelerators).  They
//! are constants of the reproduction rather than measured quantities — we do
//! not have an RTL + synthesis flow — but the derived views (percent
//! breakdowns, technology-normalised efficiency) are computed, so the tables
//! can be regenerated and checked programmatically.

use serde::{Deserialize, Serialize};

/// BitWave's total area in 16 nm (mm²).
pub const BITWAVE_AREA_MM2: f64 = 1.138;
/// BitWave's on-chip power when running ResNet18 at 250 MHz, 0.8 V (mW).
pub const BITWAVE_POWER_MW: f64 = 17.56;
/// BitWave's peak Int8 performance (GOPS).
pub const BITWAVE_PEAK_GOPS: f64 = 215.6;
/// BitWave's energy efficiency in 16 nm (TOPS/W, Int8).
pub const BITWAVE_TOPS_PER_W: f64 = 12.21;

/// One module's share of area and power (Fig. 18).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerRow {
    /// Module name.
    pub module: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Fraction of total area (0..1).
    pub area_fraction: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Fraction of total power (0..1).
    pub power_fraction: f64,
}

/// The Fig. 18 module-level breakdown of BitWave.
///
/// The SRAM dominates the area (55.08 %), the PE array dominates the power
/// (57.6 % of power at 24.7 % of area) and the flexible Data Dispatcher costs
/// 10.8 % area / 24.4 % power.
pub fn bitwave_area_power_breakdown() -> Vec<AreaPowerRow> {
    let rows: [(&str, f64, f64); 6] = [
        // (module, area fraction, power fraction)
        ("SRAM (512KB)", 0.5508, 0.082),
        ("PE array (512 BCEs)", 0.247, 0.576),
        ("Data Dispatcher", 0.108, 0.244),
        ("Data Fetcher", 0.045, 0.050),
        ("Zero-column Index Parser", 0.028, 0.030),
        ("Top controller & others", 0.0212, 0.018),
    ];
    rows.iter()
        .map(|&(module, area_fraction, power_fraction)| AreaPowerRow {
            module: module.to_string(),
            area_mm2: BITWAVE_AREA_MM2 * area_fraction,
            area_fraction,
            power_mw: BITWAVE_POWER_MW * power_fraction,
            power_fraction,
        })
        .collect()
}

/// One row of the Table IV PE-type comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeTypeRow {
    /// PE description.
    pub pe_type: String,
    /// Power in mW for the equivalent 8×8 multiply throughput.
    pub power_mw: f64,
    /// Area in µm².
    pub area_um2: f64,
}

/// Table IV: area and power of the three PE styles, each sized for one 8×8
/// multiplication per cycle of equivalent throughput.
pub fn pe_type_comparison() -> Vec<PeTypeRow> {
    vec![
        PeTypeRow {
            pe_type: "One 8x8 bit-parallel PE".to_string(),
            power_mw: 2.13e-2,
            area_um2: 98.029,
        },
        PeTypeRow {
            pe_type: "Eight 1x8 bit-serial PEs".to_string(),
            power_mw: 5.71e-2,
            area_um2: 443.284,
        },
        PeTypeRow {
            pe_type: "Eight 1x8 bit-column-serial PEs".to_string(),
            power_mw: 1.71e-2,
            area_um2: 123.431,
        },
    ]
}

/// One row of the Table III state-of-the-art comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotaRow {
    /// Design name.
    pub design: String,
    /// Process node in nm.
    pub technology_nm: f64,
    /// Reported area in mm² (None when unpublished).
    pub area_mm2: Option<f64>,
    /// Reported power in mW (None when unpublished).
    pub power_mw: Option<f64>,
    /// Peak performance in GOPS at the listed precision (None when
    /// unpublished).
    pub peak_gops: Option<f64>,
    /// Energy efficiency in TOPS/W (None when unpublished).
    pub tops_per_w: Option<f64>,
}

impl SotaRow {
    /// Area scaled to `target_nm` assuming ideal (quadratic) shrink — the
    /// normalisation Table III applies to compare against 28 nm designs.
    pub fn normalized_area_mm2(&self, target_nm: f64) -> Option<f64> {
        self.area_mm2
            .map(|a| a * (target_nm / self.technology_nm).powi(2))
    }

    /// Energy efficiency scaled to `target_nm` assuming energy scales
    /// linearly with feature size.
    pub fn normalized_tops_per_w(&self, target_nm: f64) -> Option<f64> {
        self.tops_per_w
            .map(|e| e * (self.technology_nm / target_nm))
    }

    /// Area efficiency (GOPS/W/mm²) at the normalised node, the figure of
    /// merit the paper highlights BitWave winning.
    pub fn normalized_area_efficiency(&self, target_nm: f64) -> Option<f64> {
        match (
            self.normalized_tops_per_w(target_nm),
            self.normalized_area_mm2(target_nm),
        ) {
            (Some(tops_w), Some(area)) if area > 0.0 => Some(tops_w * 1000.0 / area),
            _ => None,
        }
    }
}

/// Table III: the published specifications of the compared designs plus
/// BitWave.
pub fn sota_comparison_table() -> Vec<SotaRow> {
    vec![
        SotaRow {
            design: "Stripes".to_string(),
            technology_nm: 65.0,
            area_mm2: Some(122.1),
            power_mw: None,
            peak_gops: None,
            tops_per_w: None,
        },
        SotaRow {
            design: "Pragmatic".to_string(),
            technology_nm: 65.0,
            area_mm2: Some(157.0),
            power_mw: Some(51_600.0),
            peak_gops: None,
            tops_per_w: None,
        },
        SotaRow {
            design: "SCNN".to_string(),
            technology_nm: 16.0,
            area_mm2: Some(7.9),
            power_mw: None,
            peak_gops: Some(2000.0),
            tops_per_w: None,
        },
        SotaRow {
            design: "Bitlet".to_string(),
            technology_nm: 28.0,
            area_mm2: Some(1.54),
            power_mw: Some(366.0),
            peak_gops: Some(372.35),
            tops_per_w: Some(0.667),
        },
        SotaRow {
            design: "HUAA".to_string(),
            technology_nm: 28.0,
            area_mm2: Some(7.81),
            power_mw: Some(174.0),
            peak_gops: None,
            tops_per_w: Some(11.2),
        },
        SotaRow {
            design: "BitWave".to_string(),
            technology_nm: 16.0,
            area_mm2: Some(BITWAVE_AREA_MM2),
            power_mw: Some(BITWAVE_POWER_MW),
            peak_gops: Some(BITWAVE_PEAK_GOPS),
            tops_per_w: Some(BITWAVE_TOPS_PER_W),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let rows = bitwave_area_power_breakdown();
        let area: f64 = rows.iter().map(|r| r.area_fraction).sum();
        let power: f64 = rows.iter().map(|r| r.power_fraction).sum();
        assert!((area - 1.0).abs() < 0.01, "area fractions sum to {area}");
        assert!((power - 1.0).abs() < 0.01, "power fractions sum to {power}");
        let total_area: f64 = rows.iter().map(|r| r.area_mm2).sum();
        assert!((total_area - BITWAVE_AREA_MM2).abs() < 0.02);
    }

    #[test]
    fn sram_dominates_area_and_pe_dominates_power() {
        let rows = bitwave_area_power_breakdown();
        let max_area = rows
            .iter()
            .max_by(|a, b| a.area_fraction.total_cmp(&b.area_fraction))
            .unwrap();
        let max_power = rows
            .iter()
            .max_by(|a, b| a.power_fraction.total_cmp(&b.power_fraction))
            .unwrap();
        assert!(max_area.module.starts_with("SRAM"));
        assert!(max_power.module.starts_with("PE array"));
    }

    #[test]
    fn table4_orderings_hold() {
        let rows = pe_type_comparison();
        let parallel = &rows[0];
        let serial = &rows[1];
        let column = &rows[2];
        // Bit-parallel is the smallest; bit-serial burns the most power; the
        // bit-column-serial PE costs ~1.26x area but ~1.25x less power than
        // bit-parallel.
        assert!(parallel.area_um2 < column.area_um2);
        assert!(column.area_um2 < serial.area_um2);
        assert!(column.power_mw < parallel.power_mw);
        assert!(serial.power_mw > parallel.power_mw);
        let area_overhead = column.area_um2 / parallel.area_um2;
        assert!((1.2..1.35).contains(&area_overhead));
    }

    #[test]
    fn table3_normalisation() {
        let table = sota_comparison_table();
        let bitwave = table.iter().find(|r| r.design == "BitWave").unwrap();
        // Normalised to 28 nm the paper reports ~3.49 mm² and ~10.3 TOPS/W
        // (energy efficiency shrinks when scaling up the node).
        let area28 = bitwave.normalized_area_mm2(28.0).unwrap();
        assert!((area28 - 3.49).abs() < 0.1, "got {area28}");
        let eff28 = bitwave.normalized_tops_per_w(28.0).unwrap();
        assert!((6.0..8.0).contains(&eff28), "got {eff28}");
        // Area efficiency at the native node still tops the table among rows
        // that report both numbers.
        let bw_eff = bitwave.normalized_area_efficiency(28.0).unwrap();
        for row in &table {
            if row.design != "BitWave" {
                if let Some(other) = row.normalized_area_efficiency(28.0) {
                    assert!(
                        bw_eff > other,
                        "BitWave should lead area efficiency vs {}",
                        row.design
                    );
                }
            }
        }
    }

    #[test]
    fn missing_data_propagates_as_none() {
        let row = SotaRow {
            design: "X".to_string(),
            technology_nm: 65.0,
            area_mm2: None,
            power_mw: None,
            peak_gops: None,
            tops_per_w: None,
        };
        assert!(row.normalized_area_mm2(28.0).is_none());
        assert!(row.normalized_tops_per_w(28.0).is_none());
        assert!(row.normalized_area_efficiency(28.0).is_none());
    }
}
