//! # bitwave-accel
//!
//! Sparsity-aware performance and energy models for BitWave and the
//! state-of-the-art accelerators it is compared against (Section V-B of the
//! paper): Dense, HUAA, Stripes, Pragmatic, SCNN and Bitlet.
//!
//! The modelling flow mirrors the paper's four steps:
//!
//! 1. **STEP 1** — dense activity counts per accelerator and layer come from
//!    the ZigZag-style model in `bitwave-dataflow`
//!    ([`bitwave_dataflow::ActivityCounts`]).
//! 2. **STEP 2** — per-layer sparsity statistics and compression ratios are
//!    captured in [`sparsity::LayerSparsityProfile`], including the load
//!    imbalance adjustment for runtime-scheduled bit-serial machines.
//! 3. **STEP 3** — [`model::evaluate_layer`] combines both into effective
//!    operation and memory-access counts (Eqs. 1–3).
//! 4. **STEP 4** — the energy model ([`energy::EnergyModel`], Eq. 4) and the
//!    latency model (Eq. 5) turn the counts into energy and cycles;
//!    [`model::evaluate_network`] aggregates layers into the network-level
//!    results behind Figs. 13–17.
//!
//! [`area`] holds the area/power breakdowns and technology constants behind
//! Fig. 18 and Tables III–IV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod model;
pub mod sparsity;
pub mod spec;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use model::{
    bits_per_mac_class, evaluate_layer, evaluate_layer_with_mapping, evaluate_network,
    factor_layer_with_mapping, FactoredLayerCost, LayerResult, NetworkResult, RepricedLayerCost,
};
pub use sparsity::{LayerAnalysis, LayerSparsityProfile};
pub use spec::{AcceleratorKind, AcceleratorSpec, BitwaveOptimizations};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::area::{
        bitwave_area_power_breakdown, pe_type_comparison, sota_comparison_table, AreaPowerRow,
        PeTypeRow, SotaRow,
    };
    pub use crate::energy::{EnergyBreakdown, EnergyModel};
    pub use crate::model::{
        evaluate_layer, evaluate_layer_with_mapping, evaluate_network, LayerResult, NetworkResult,
    };
    pub use crate::sparsity::{LayerAnalysis, LayerSparsityProfile};
    pub use crate::spec::{AcceleratorKind, AcceleratorSpec, BitwaveOptimizations};
}
