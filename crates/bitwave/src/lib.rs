//! # bitwave
//!
//! High-level facade of the BitWave (HPCA 2024) reproduction.  It re-exports
//! the substrate crates, provides the unified per-layer [`pipeline`]
//! (compress → bit-flip → map → simulate) and one **experiment driver per
//! table and figure** of the paper's evaluation, so that the benchmark
//! harness, the examples and downstream users can regenerate every result
//! with a single function call.
//!
//! | module | contents |
//! |--------|----------|
//! | [`context`] | shared experiment configuration (seed, sampling cap, group size, memory, energy model) |
//! | [`digest`] | stable FNV-1a/128 content digests over canonical JSON (request/report addressing for `bitwave-serve`) |
//! | [`pipeline`] | the typed compress → bit-flip → map → simulate layer pipeline, sequential and rayon-parallel |
//! | [`error`] | [`BitwaveError`], the unified error propagated across all crate boundaries |
//! | [`experiments::sparsity`] | Fig. 1, Fig. 4, Fig. 5 — sparsity survey, representation study, compression-ratio sweep |
//! | [`experiments::bitflip`] | Fig. 6 — layer sensitivity and CR-vs-quality Pareto fronts |
//! | [`experiments::hardware`] | Fig. 9, Table I, Fig. 12, Table III, Table IV, Fig. 18 |
//! | [`experiments::evaluation`] | Fig. 13–17 speedup / energy / efficiency comparisons and the model-vs-simulator validation |
//!
//! # Quickstart
//!
//! ```
//! use bitwave::context::ExperimentContext;
//! use bitwave::experiments::sparsity::fig01_sparsity_survey;
//!
//! // Use a tiny sampling cap to keep the doctest fast; the benches use the
//! // default (much larger) cap.
//! let ctx = ExperimentContext::default().with_sample_cap(2_000);
//! let rows = fig01_sparsity_survey(&ctx).unwrap();
//! assert_eq!(rows.len(), 4);
//! for row in &rows {
//!     assert!(row.bit_sparsity_sign_magnitude >= row.value_sparsity);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod digest;
pub mod error;
pub mod experiments;
pub mod pipeline;

pub use bitwave_accel as accel;
pub use bitwave_core as core;
pub use bitwave_dataflow as dataflow;
pub use bitwave_dnn as dnn;
pub use bitwave_dse as dse;
pub use bitwave_sim as sim;
pub use bitwave_tensor as tensor;

pub use context::ExperimentContext;
pub use error::{BitwaveError, Result};
pub use pipeline::{LayerReport, ModelReport, Pipeline};
