//! Stable content digests over serializable values.
//!
//! The digest primitives — [`Digest`], [`fnv1a128`] — live in
//! [`bitwave_core::digest`] so that substrate crates (notably the
//! `bitwave-dse` memoization cache) can address content without depending on
//! this facade; they are re-exported here unchanged.  The evaluation service
//! (`bitwave-serve`) addresses cached [`crate::pipeline::ModelReport`]s by a
//! digest of the request that produced them: the model id, the accelerator
//! name and the [`crate::context::ExperimentContext`] knobs captured by
//! [`ContextKnobs`].
//!
//! Digests are formatted as 32 lowercase hex characters, e.g.
//! `"5e1b40b4a3fe5bd0a35b1a2f2f9e5a6c"`.

pub use bitwave_core::digest::{fnv1a128, Digest};

use bitwave_dataflow::mapping::MappingPolicy;
use serde::{Deserialize, Serialize};

/// Version stamp mixed into every `EvaluationKey` digest.  Bump when the
/// meaning of a key field changes so stale cache entries can never alias new
/// requests.  Version 2: [`ContextKnobs`] gained the `mapping` policy knob.
pub const DIGEST_SCHEMA_VERSION: u32 = 2;

/// The digestible knobs of an [`crate::context::ExperimentContext`]: the
/// subset of the context that influences a pipeline evaluation and can be set
/// per request.  The memory hierarchy and unit-energy model are fixed
/// paper-default tables and are covered by [`DIGEST_SCHEMA_VERSION`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextKnobs {
    /// RNG seed for the synthetic weights.
    pub seed: u64,
    /// Per-layer weight sampling cap.
    pub sample_cap: usize,
    /// BCS group size (weights per group).
    pub group_size: usize,
    /// How the map stage picks each layer's spatial unrolling.
    pub mapping: MappingPolicy,
}

impl ContextKnobs {
    /// Extracts the digestible knobs of a context.
    pub fn of(ctx: &crate::context::ExperimentContext) -> Self {
        Self {
            seed: ctx.seed,
            sample_cap: ctx.sample_cap,
            group_size: ctx.group_size.len(),
            mapping: ctx.mapping_policy,
        }
    }

    /// Builds a context (paper-default memory/energy tables) from the knobs.
    pub fn to_context(self) -> crate::context::ExperimentContext {
        crate::context::ExperimentContext::default()
            .with_seed(self.seed)
            .with_sample_cap(self.sample_cap)
            .with_group_size(bitwave_core::group::GroupSize::from_len(self.group_size))
            .with_mapping_policy(self.mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use bitwave_core::group::GroupSize;

    fn knobs() -> ContextKnobs {
        ContextKnobs {
            seed: 42,
            sample_cap: 1000,
            group_size: 16,
            mapping: MappingPolicy::Heuristic,
        }
    }

    #[test]
    fn value_digest_tracks_field_changes() {
        let a = knobs();
        let mut b = a;
        assert_eq!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
        b.seed = 43;
        assert_ne!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
        let mut c = a;
        c.mapping = MappingPolicy::Searched;
        assert_ne!(
            Digest::of_value(&a).unwrap(),
            Digest::of_value(&c).unwrap(),
            "the mapping policy must be digest-relevant"
        );
    }

    #[test]
    fn knobs_roundtrip_through_a_context() {
        let ctx = ExperimentContext::default()
            .with_seed(7)
            .with_sample_cap(2_000)
            .with_group_size(GroupSize::G8)
            .with_mapping_policy(MappingPolicy::Searched);
        let knobs = ContextKnobs::of(&ctx);
        assert_eq!(knobs.seed, 7);
        assert_eq!(knobs.sample_cap, 2_000);
        assert_eq!(knobs.group_size, 8);
        assert_eq!(knobs.mapping, MappingPolicy::Searched);
        let rebuilt = knobs.to_context();
        assert_eq!(rebuilt.seed, ctx.seed);
        assert_eq!(rebuilt.sample_cap, ctx.sample_cap);
        assert_eq!(rebuilt.group_size, ctx.group_size);
        assert_eq!(rebuilt.mapping_policy, ctx.mapping_policy);
    }

    #[test]
    fn knobs_deserialize_from_canonical_json() {
        let json = serde_json::to_string(&knobs()).unwrap();
        assert!(json.contains("\"Heuristic\""));
        let parsed: ContextKnobs = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, knobs());
    }
}
