//! Stable content digests over serializable values.
//!
//! The digest primitives — [`Digest`], [`fnv1a128`] — live in
//! [`bitwave_core::digest`] so that substrate crates (notably the
//! `bitwave-dse` memoization cache) can address content without depending on
//! this facade; they are re-exported here unchanged.  The evaluation service
//! (`bitwave-serve`) addresses cached [`crate::pipeline::ModelReport`]s by a
//! digest of the request that produced them: the model id, the accelerator
//! name and the [`crate::context::ExperimentContext`] knobs captured by
//! [`ContextKnobs`].
//!
//! Digests are formatted as 32 lowercase hex characters, e.g.
//! `"5e1b40b4a3fe5bd0a35b1a2f2f9e5a6c"`.

pub use bitwave_core::digest::{fnv1a128, Digest};

use bitwave_dataflow::mapping::MappingPolicy;
use bitwave_dataflow::DramSpec;
use serde::{Deserialize, Error, Serialize, Value};

/// Version stamp mixed into every `EvaluationKey` digest.  Bump when the
/// meaning of a key field changes so stale cache entries can never alias new
/// requests.  Version 2: [`ContextKnobs`] gained the `mapping` policy knob.
/// (The `dram` knob added later is omitted at its unconstrained default, so
/// it did not need a bump: unthrottled requests keep their version-2 keys.)
pub const DIGEST_SCHEMA_VERSION: u32 = 2;

/// The digestible knobs of an [`crate::context::ExperimentContext`]: the
/// subset of the context that influences a pipeline evaluation and can be set
/// per request.  The memory hierarchy and unit-energy model are fixed
/// paper-default tables and are covered by [`DIGEST_SCHEMA_VERSION`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextKnobs {
    /// RNG seed for the synthetic weights.
    pub seed: u64,
    /// Per-layer weight sampling cap.
    pub sample_cap: usize,
    /// BCS group size (weights per group).
    pub group_size: usize,
    /// How the map stage picks each layer's spatial unrolling.
    pub mapping: MappingPolicy,
    /// DRAM tier override applied to the accelerator.  The accelerator
    /// *name* does not change when a request throttles its bandwidth, so
    /// the knob must be part of the digest for throttled evaluations to get
    /// their own cache entries.
    pub dram: DramSpec,
}

/// Hand-written so the `dram` knob is omitted while unconstrained — the
/// default for every request that predates the DRAM tier — keeping those
/// requests' digests (and therefore their cached report bytes) unchanged.
impl Serialize for ContextKnobs {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seed".to_string(), self.seed.to_value()),
            ("sample_cap".to_string(), self.sample_cap.to_value()),
            ("group_size".to_string(), self.group_size.to_value()),
            ("mapping".to_string(), self.mapping.to_value()),
        ];
        if self.dram.is_constrained() {
            fields.push(("dram".to_string(), self.dram.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ContextKnobs {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| value.get(name).unwrap_or(&Value::Null);
        Ok(Self {
            seed: u64::from_value(field("seed")).map_err(|e| e.at("seed"))?,
            sample_cap: usize::from_value(field("sample_cap")).map_err(|e| e.at("sample_cap"))?,
            group_size: usize::from_value(field("group_size")).map_err(|e| e.at("group_size"))?,
            mapping: MappingPolicy::from_value(field("mapping")).map_err(|e| e.at("mapping"))?,
            dram: match value.get("dram") {
                None => DramSpec::unconstrained(),
                Some(v) => DramSpec::from_value(v).map_err(|e| e.at("dram"))?,
            },
        })
    }
}

impl ContextKnobs {
    /// Extracts the digestible knobs of a context (unconstrained DRAM; the
    /// serve layer overrides `dram` when a request throttles the tier).
    pub fn of(ctx: &crate::context::ExperimentContext) -> Self {
        Self {
            seed: ctx.seed,
            sample_cap: ctx.sample_cap,
            group_size: ctx.group_size.len(),
            mapping: ctx.mapping_policy,
            dram: DramSpec::unconstrained(),
        }
    }

    /// Builds a context (paper-default memory/energy tables) from the knobs.
    pub fn to_context(self) -> crate::context::ExperimentContext {
        crate::context::ExperimentContext::default()
            .with_seed(self.seed)
            .with_sample_cap(self.sample_cap)
            .with_group_size(bitwave_core::group::GroupSize::from_len(self.group_size))
            .with_mapping_policy(self.mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use bitwave_core::group::GroupSize;

    fn knobs() -> ContextKnobs {
        ContextKnobs {
            seed: 42,
            sample_cap: 1000,
            group_size: 16,
            mapping: MappingPolicy::Heuristic,
            dram: DramSpec::unconstrained(),
        }
    }

    #[test]
    fn value_digest_tracks_field_changes() {
        let a = knobs();
        let mut b = a;
        assert_eq!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
        b.seed = 43;
        assert_ne!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
        let mut c = a;
        c.mapping = MappingPolicy::Searched;
        assert_ne!(
            Digest::of_value(&a).unwrap(),
            Digest::of_value(&c).unwrap(),
            "the mapping policy must be digest-relevant"
        );
    }

    #[test]
    fn knobs_roundtrip_through_a_context() {
        let ctx = ExperimentContext::default()
            .with_seed(7)
            .with_sample_cap(2_000)
            .with_group_size(GroupSize::G8)
            .with_mapping_policy(MappingPolicy::Searched);
        let knobs = ContextKnobs::of(&ctx);
        assert_eq!(knobs.seed, 7);
        assert_eq!(knobs.sample_cap, 2_000);
        assert_eq!(knobs.group_size, 8);
        assert_eq!(knobs.mapping, MappingPolicy::Searched);
        let rebuilt = knobs.to_context();
        assert_eq!(rebuilt.seed, ctx.seed);
        assert_eq!(rebuilt.sample_cap, ctx.sample_cap);
        assert_eq!(rebuilt.group_size, ctx.group_size);
        assert_eq!(rebuilt.mapping_policy, ctx.mapping_policy);
    }

    #[test]
    fn knobs_deserialize_from_canonical_json() {
        let json = serde_json::to_string(&knobs()).unwrap();
        assert!(json.contains("\"Heuristic\""));
        assert!(
            !json.contains("\"dram\""),
            "unconstrained knobs must serialize without a dram key: {json}"
        );
        let parsed: ContextKnobs = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, knobs());
    }

    #[test]
    fn throttled_dram_knob_changes_the_digest_and_roundtrips() {
        let base = knobs();
        let mut throttled = base;
        throttled.dram = DramSpec::constrained(32);
        assert_ne!(
            Digest::of_value(&base).unwrap(),
            Digest::of_value(&throttled).unwrap(),
            "a throttled DRAM tier must address its own cache entry"
        );
        let json = serde_json::to_string(&throttled).unwrap();
        assert!(json.contains("\"dram\""));
        let parsed: ContextKnobs = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, throttled);
    }
}
