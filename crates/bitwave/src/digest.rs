//! Stable content digests over serializable values.
//!
//! The evaluation service (`bitwave-serve`) addresses cached
//! [`crate::pipeline::ModelReport`]s by a digest of the request that produced
//! them: the model id, the accelerator name and the
//! [`crate::context::ExperimentContext`] knobs.  The digest must be **stable**
//! — the same logical request always hashes to the same value, across
//! processes and runs — so it cannot use [`std::hash::Hash`] (whose hasher is
//! randomised and whose byte layout is unspecified).  Instead a value is
//! first rendered to canonical compact JSON (the vendored serde preserves
//! struct-field declaration order, so the rendering is deterministic) and the
//! JSON bytes are hashed with FNV-1a/128.
//!
//! Digests are formatted as 32 lowercase hex characters, e.g.
//! `"5e1b40b4a3fe5bd0a35b1a2f2f9e5a6c"`.

use crate::error::Result;
use serde::Serialize;
use std::fmt;

/// Version stamp mixed into every [`EvaluationKey`] digest.  Bump when the
/// meaning of a key field changes so stale cache entries can never alias new
/// requests.
pub const DIGEST_SCHEMA_VERSION: u32 = 1;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a/128 over a byte slice.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

/// A stable 128-bit content digest, displayed as 32 lowercase hex chars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(u128);

impl Digest {
    /// Digest of raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Digest(fnv1a128(bytes))
    }

    /// Digest of a serializable value via its canonical compact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BitwaveError::Serialization`] when the value fails to
    /// serialize.
    pub fn of_value<T: Serialize + ?Sized>(value: &T) -> Result<Self> {
        Ok(Self::of_bytes(serde_json::to_string(value)?.as_bytes()))
    }

    /// Parses the 32-hex-char form back into a digest.  Returns `None` for
    /// anything that is not exactly 32 lowercase/uppercase hex characters.
    pub fn parse(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Digest)
    }

    /// The 32-lowercase-hex-char string form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The digestible knobs of an [`crate::context::ExperimentContext`]: the
/// subset of the context that influences a pipeline evaluation and can be set
/// per request.  The memory hierarchy and unit-energy model are fixed
/// paper-default tables and are covered by [`DIGEST_SCHEMA_VERSION`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub struct ContextKnobs {
    /// RNG seed for the synthetic weights.
    pub seed: u64,
    /// Per-layer weight sampling cap.
    pub sample_cap: usize,
    /// BCS group size (weights per group).
    pub group_size: usize,
}

impl ContextKnobs {
    /// Extracts the digestible knobs of a context.
    pub fn of(ctx: &crate::context::ExperimentContext) -> Self {
        Self {
            seed: ctx.seed,
            sample_cap: ctx.sample_cap,
            group_size: ctx.group_size.len(),
        }
    }

    /// Builds a context (paper-default memory/energy tables) from the knobs.
    pub fn to_context(self) -> crate::context::ExperimentContext {
        crate::context::ExperimentContext::default()
            .with_seed(self.seed)
            .with_sample_cap(self.sample_cap)
            .with_group_size(bitwave_core::group::GroupSize::from_len(self.group_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use bitwave_core::group::GroupSize;

    #[test]
    fn digests_are_stable_across_calls_and_formats() {
        let a = Digest::of_bytes(b"bitwave");
        let b = Digest::of_bytes(b"bitwave");
        assert_eq!(a, b);
        assert_ne!(a, Digest::of_bytes(b"bitwavf"));
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::parse(&hex), Some(a));
        assert_eq!(hex, a.to_string());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a/128 of the empty input is the offset basis.
        assert_eq!(fnv1a128(b""), FNV128_OFFSET);
        // One-byte avalanche: 'a' XORed into the basis then multiplied once.
        let expected = (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME);
        assert_eq!(fnv1a128(b"a"), expected);
    }

    #[test]
    fn parse_rejects_malformed_digests() {
        assert!(Digest::parse("").is_none());
        assert!(Digest::parse("xyz").is_none());
        assert!(Digest::parse(&"0".repeat(31)).is_none());
        assert!(Digest::parse(&"g".repeat(32)).is_none());
        assert!(Digest::parse(&"0".repeat(33)).is_none());
    }

    #[test]
    fn value_digest_tracks_field_changes() {
        let a = ContextKnobs {
            seed: 42,
            sample_cap: 1000,
            group_size: 16,
        };
        let mut b = a;
        assert_eq!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
        b.seed = 43;
        assert_ne!(Digest::of_value(&a).unwrap(), Digest::of_value(&b).unwrap());
    }

    #[test]
    fn knobs_roundtrip_through_a_context() {
        let ctx = ExperimentContext::default()
            .with_seed(7)
            .with_sample_cap(2_000)
            .with_group_size(GroupSize::G8);
        let knobs = ContextKnobs::of(&ctx);
        assert_eq!(knobs.seed, 7);
        assert_eq!(knobs.sample_cap, 2_000);
        assert_eq!(knobs.group_size, 8);
        let rebuilt = knobs.to_context();
        assert_eq!(rebuilt.seed, ctx.seed);
        assert_eq!(rebuilt.sample_cap, ctx.sample_cap);
        assert_eq!(rebuilt.group_size, ctx.group_size);
    }
}
