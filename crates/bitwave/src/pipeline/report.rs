//! Serializable reports produced by the pipeline stages.

use bitwave_accel::EnergyBreakdown;
use bitwave_core::compress::{BcsSizes, CompressedTensor};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dataflow::MemoryBoundedness;
use serde::{Deserialize, Error, Serialize, Value};

/// Size accounting of one BCS-compressed layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionSummary {
    /// Group size used for compression.
    pub group_size: usize,
    /// Uncompressed size in bits.
    pub original_bits: usize,
    /// Compressed payload bits (stored non-zero columns).
    pub payload_bits: usize,
    /// Index/metadata bits (8 per group).
    pub index_bits: usize,
    /// Compression ratio ignoring the index overhead.
    pub cr_ideal: f64,
    /// Compression ratio including the index overhead.
    pub cr_with_index: f64,
}

impl CompressionSummary {
    /// Builds a summary from a compressed tensor.
    pub fn from_compressed(compressed: &CompressedTensor, group_size: usize) -> Self {
        Self {
            group_size,
            original_bits: compressed.original_bits(),
            payload_bits: compressed.payload_bits,
            index_bits: compressed.index_bits,
            cr_ideal: compressed.compression_ratio_ideal(),
            cr_with_index: compressed.compression_ratio_with_index(),
        }
    }

    /// Builds a summary from size-only BCS accounting (no payload
    /// materialisation). The ratio math is shared with
    /// [`CompressedTensor`], so the numbers are bit-identical to
    /// [`CompressionSummary::from_compressed`] on the same weights.
    pub fn from_sizes(sizes: &BcsSizes, group_size: usize) -> Self {
        Self {
            group_size,
            original_bits: sizes.original_bits(),
            payload_bits: sizes.payload_bits,
            index_bits: sizes.index_bits,
            cr_ideal: sizes.compression_ratio_ideal(),
            cr_with_index: sizes.compression_ratio_with_index(),
        }
    }

    /// Whole-model compression ratio (index included) over several layers'
    /// summaries — the single source of truth for model-level CR aggregation.
    pub fn aggregate_ratio<'a, I>(summaries: I) -> f64
    where
        I: IntoIterator<Item = &'a CompressionSummary>,
    {
        let mut original = 0u64;
        let mut stored = 0u64;
        for summary in summaries {
            original += summary.original_bits as u64;
            stored += (summary.payload_bits + summary.index_bits) as u64;
        }
        if stored == 0 {
            1.0
        } else {
            original as f64 / stored as f64
        }
    }
}

/// Outcome of the Bit-Flip stage on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitFlipSummary {
    /// The zero-column target that was applied.
    pub zero_column_target: u32,
    /// Groups processed.
    pub groups: usize,
    /// Groups that had to be modified.
    pub groups_modified: usize,
    /// RMS weight perturbation in LSBs.
    pub rms_perturbation: f64,
    /// Mean zero columns per group after flipping.
    pub mean_zero_columns: f64,
    /// Compression accounting after the flip.
    pub compression_after: CompressionSummary,
}

/// The mapping decision for one layer, as recorded by the map stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingSummary {
    /// Name of the chosen spatial unrolling.
    pub su: String,
    /// PE-array utilisation under that SU.
    pub utilization: f64,
    /// Effective MAC lanes per cycle.
    pub effective_macs_per_cycle: f64,
}

/// Performance/energy results of the simulate stage on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationSummary {
    /// Accelerator label the layer was evaluated on.
    pub accelerator: String,
    /// Effective MAC operations after sparsity skipping.
    pub effective_macs: f64,
    /// Compute cycles.
    pub compute_cycles: f64,
    /// Non-hideable DRAM cycles.
    pub dram_cycles: f64,
    /// Total latency in cycles.
    pub total_cycles: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Compute-vs-memory roofline verdict; `Some` only when the accelerator
    /// ran with a constrained DRAM tier.
    pub boundedness: Option<MemoryBoundedness>,
}

/// Hand-written so the `boundedness` key is omitted (not `null`) when the
/// DRAM tier is unconstrained: every golden report, cached store entry and
/// content digest of an existing configuration keeps its exact bytes.
impl Serialize for SimulationSummary {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("accelerator".to_string(), self.accelerator.to_value()),
            ("effective_macs".to_string(), self.effective_macs.to_value()),
            ("compute_cycles".to_string(), self.compute_cycles.to_value()),
            ("dram_cycles".to_string(), self.dram_cycles.to_value()),
            ("total_cycles".to_string(), self.total_cycles.to_value()),
            ("energy".to_string(), self.energy.to_value()),
        ];
        if let Some(boundedness) = &self.boundedness {
            fields.push(("boundedness".to_string(), boundedness.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for SimulationSummary {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| value.get(name).unwrap_or(&Value::Null);
        Ok(Self {
            accelerator: String::from_value(field("accelerator"))
                .map_err(|e| e.at("accelerator"))?,
            effective_macs: f64::from_value(field("effective_macs"))
                .map_err(|e| e.at("effective_macs"))?,
            compute_cycles: f64::from_value(field("compute_cycles"))
                .map_err(|e| e.at("compute_cycles"))?,
            dram_cycles: f64::from_value(field("dram_cycles")).map_err(|e| e.at("dram_cycles"))?,
            total_cycles: f64::from_value(field("total_cycles"))
                .map_err(|e| e.at("total_cycles"))?,
            energy: EnergyBreakdown::from_value(field("energy")).map_err(|e| e.at("energy"))?,
            // Absent in every report produced before the DRAM tier existed
            // (and in all unconstrained ones since) — those decode to `None`.
            boundedness: Option::<MemoryBoundedness>::from_value(field("boundedness"))
                .map_err(|e| e.at("boundedness"))?,
        })
    }
}

/// The complete, serializable record of one layer's trip through the
/// compress → bit-flip → map → simulate pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Network name.
    pub network: String,
    /// Layer name.
    pub layer: String,
    /// Weight elements analysed (sampled count, not necessarily full size).
    pub weight_elements: usize,
    /// Dense MAC operations of the layer.
    pub macs: u64,
    /// Sparsity statistics of the (pre-flip) weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless compression accounting of the (pre-flip) weights.
    pub compression: CompressionSummary,
    /// Bit-Flip outcome; `None` when the layer's target was 0.
    pub bitflip: Option<BitFlipSummary>,
    /// Dataflow mapping decision.
    pub mapping: MappingSummary,
    /// Performance/energy results.
    pub simulation: SimulationSummary,
}

impl LayerReport {
    /// The compression accounting that is actually shipped to the hardware:
    /// post-flip when the layer was flipped, lossless otherwise.
    pub fn effective_compression(&self) -> &CompressionSummary {
        self.bitflip
            .as_ref()
            .map_or(&self.compression, |b| &b.compression_after)
    }
}

/// Aggregated results of running a whole model through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Network name.
    pub network: String,
    /// Accelerator label.
    pub accelerator: String,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Total latency in cycles.
    pub total_cycles: f64,
    /// Total energy breakdown.
    pub energy: EnergyBreakdown,
    /// Total effective MAC operations.
    pub effective_macs: f64,
    /// Total dense MAC operations of the workload.
    pub total_macs: u64,
    /// Element-weighted whole-model weight compression ratio (index
    /// included, post-flip where applicable).
    pub weight_compression_ratio: f64,
    /// How many layers the DRAM-tier roofline judged memory-bound.  Always 0
    /// under the unconstrained default (and omitted from the JSON).
    pub memory_bound_layers: usize,
}

/// Hand-written so `memory_bound_layers` is omitted while 0 — which it
/// always is at the unconstrained default — keeping golden reports, cached
/// store bytes and content digests of existing configurations identical.
impl Serialize for ModelReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("network".to_string(), self.network.to_value()),
            ("accelerator".to_string(), self.accelerator.to_value()),
            ("layers".to_string(), self.layers.to_value()),
            ("total_cycles".to_string(), self.total_cycles.to_value()),
            ("energy".to_string(), self.energy.to_value()),
            ("effective_macs".to_string(), self.effective_macs.to_value()),
            ("total_macs".to_string(), self.total_macs.to_value()),
            (
                "weight_compression_ratio".to_string(),
                self.weight_compression_ratio.to_value(),
            ),
        ];
        if self.memory_bound_layers > 0 {
            fields.push((
                "memory_bound_layers".to_string(),
                self.memory_bound_layers.to_value(),
            ));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ModelReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| value.get(name).unwrap_or(&Value::Null);
        Ok(Self {
            network: String::from_value(field("network")).map_err(|e| e.at("network"))?,
            accelerator: String::from_value(field("accelerator"))
                .map_err(|e| e.at("accelerator"))?,
            layers: Vec::<LayerReport>::from_value(field("layers")).map_err(|e| e.at("layers"))?,
            total_cycles: f64::from_value(field("total_cycles"))
                .map_err(|e| e.at("total_cycles"))?,
            energy: EnergyBreakdown::from_value(field("energy")).map_err(|e| e.at("energy"))?,
            effective_macs: f64::from_value(field("effective_macs"))
                .map_err(|e| e.at("effective_macs"))?,
            total_macs: u64::from_value(field("total_macs")).map_err(|e| e.at("total_macs"))?,
            weight_compression_ratio: f64::from_value(field("weight_compression_ratio"))
                .map_err(|e| e.at("weight_compression_ratio"))?,
            memory_bound_layers: match value.get("memory_bound_layers") {
                None => 0,
                Some(v) => usize::from_value(v).map_err(|e| e.at("memory_bound_layers"))?,
            },
        })
    }
}

impl ModelReport {
    /// Aggregates per-layer reports into a model report.
    pub fn from_layers(network: String, accelerator: String, layers: Vec<LayerReport>) -> Self {
        let mut total_cycles = 0.0f64;
        let mut energy = EnergyBreakdown::default();
        let mut effective_macs = 0.0f64;
        let mut total_macs = 0u64;
        for layer in &layers {
            total_cycles += layer.simulation.total_cycles;
            energy = energy.accumulate(&layer.simulation.energy);
            effective_macs += layer.simulation.effective_macs;
            total_macs += layer.macs;
        }
        let weight_compression_ratio = CompressionSummary::aggregate_ratio(
            layers.iter().map(LayerReport::effective_compression),
        );
        let memory_bound_layers = layers
            .iter()
            .filter(|l| l.simulation.boundedness.is_some_and(|b| b.memory_bound))
            .count();
        Self {
            network,
            accelerator,
            layers,
            total_cycles,
            energy,
            effective_macs,
            total_macs,
            weight_compression_ratio,
            memory_bound_layers,
        }
    }

    /// Stable content digest of this report: FNV-1a/128 over its canonical
    /// compact JSON (see [`crate::digest`]).  Two reports digest equal iff
    /// their serialized forms are byte-identical — the property the
    /// evaluation service's content-addressed cache relies on.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BitwaveError::Serialization`] when the report fails
    /// to serialize.
    pub fn content_digest(&self) -> crate::error::Result<crate::digest::Digest> {
        Ok(crate::digest::Digest::of_value(self)?)
    }

    /// Speedup of `self` relative to `baseline` (higher is better).
    pub fn speedup_over(&self, baseline: &ModelReport) -> f64 {
        baseline.total_cycles / self.total_cycles
    }

    /// Energy of `self` relative to `baseline` (lower is better).
    pub fn relative_energy(&self, baseline: &ModelReport) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }

    /// Energy efficiency in useful operations per picojoule (2 ops per
    /// effective MAC, as the paper counts useful operations).
    pub fn energy_efficiency_ops_per_pj(&self) -> f64 {
        2.0 * self.effective_macs / self.energy.total_pj()
    }

    /// Energy-efficiency ratio relative to `baseline` (higher is better).
    pub fn efficiency_over(&self, baseline: &ModelReport) -> f64 {
        self.energy_efficiency_ops_per_pj() / baseline.energy_efficiency_ops_per_pj()
    }
}
