//! The four typed stages of the layer pipeline.
//!
//! Each stage is a plain struct implementing [`PipelineStage`]: it consumes
//! the previous stage's typed output and produces its own, so the
//! compress → bit-flip → map → simulate chain is checked by the type system
//! and every intermediate is inspectable by experiment drivers that only
//! need a prefix of the chain (e.g. the Fig. 5 compression sweeps stop after
//! [`CompressStage`]).

use crate::error::Result;
use crate::pipeline::job::LayerJob;
use crate::pipeline::report::{
    BitFlipSummary, CompressionSummary, LayerReport, MappingSummary, SimulationSummary,
};
use bitwave_accel::model::evaluate_layer_with_mapping;
use bitwave_accel::{AcceleratorSpec, EnergyModel, LayerSparsityProfile};
use bitwave_core::bitflip::flip_tensor;
use bitwave_core::compress::BcsCodec;
use bitwave_core::group::{extract_groups, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dataflow::mapping::{select_spatial_unrolling, MappingDecision};
use bitwave_dataflow::MemoryHierarchy;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::QuantTensor;

/// One typed stage of the pipeline.
pub trait PipelineStage {
    /// The stage's input.
    type Input;
    /// The stage's output.
    type Output;

    /// Short stage name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Propagates any substrate error as [`crate::BitwaveError`].
    fn run(&self, input: Self::Input) -> Result<Self::Output>;
}

/// Compresses a layer's weights with sign-magnitude BCS and records its
/// sparsity statistics.
#[derive(Debug, Clone, Copy)]
pub struct CompressStage {
    /// Bit encoding used for column statistics and compression.
    pub encoding: Encoding,
}

impl CompressStage {
    /// Creates the stage with the given encoding.
    pub fn new(encoding: Encoding) -> Self {
        Self { encoding }
    }

    fn compress(&self, weights: &QuantTensor, group_size: GroupSize) -> Result<CompressionSummary> {
        let groups = extract_groups(weights, group_size)?;
        // `original_len` is the *unpadded* element count: compression ratios
        // are measured against the real weight storage, while the stored
        // payload/index bits still account for the hardware's zero-padded
        // tail groups.
        let compressed = BcsCodec::new(group_size, self.encoding)
            .compress_groups(groups.iter(), weights.data().len());
        Ok(CompressionSummary::from_compressed(
            &compressed,
            group_size.len(),
        ))
    }
}

/// Output of [`CompressStage`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedLayer {
    /// The job being processed (weights still unmodified).
    pub job: LayerJob,
    /// Sparsity statistics of the weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless BCS size accounting.
    pub compression: CompressionSummary,
}

impl PipelineStage for CompressStage {
    type Input = LayerJob;
    type Output = CompressedLayer;

    fn name(&self) -> &'static str {
        "compress"
    }

    fn run(&self, job: LayerJob) -> Result<CompressedLayer> {
        let sparsity = LayerSparsityStats::analyze(&job.weights, job.group_size)?;
        let compression = self.compress(&job.weights, job.group_size)?;
        Ok(CompressedLayer {
            job,
            sparsity,
            compression,
        })
    }
}

/// Applies the job's zero-column Bit-Flip target (no-op at target 0) and
/// re-compresses the flipped weights.
#[derive(Debug, Clone, Copy)]
pub struct BitFlipStage {
    /// Bit encoding the flip optimises for.
    pub encoding: Encoding,
}

impl BitFlipStage {
    /// Creates the stage with the given encoding.
    pub fn new(encoding: Encoding) -> Self {
        Self { encoding }
    }
}

/// Output of [`BitFlipStage`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlippedLayer {
    /// The job, with `weights` replaced by the flipped tensor when a flip
    /// was applied.
    pub job: LayerJob,
    /// Sparsity statistics of the pre-flip weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless (pre-flip) compression accounting.
    pub compression: CompressionSummary,
    /// Flip outcome, `None` when the target was 0.
    pub bitflip: Option<BitFlipSummary>,
    /// Sparsity profile of the *final* (possibly flipped) weights, computed
    /// once here so the simulate stage can be re-run for many accelerators
    /// without re-analysing the same tensor.
    pub profile: LayerSparsityProfile,
}

impl PipelineStage for BitFlipStage {
    type Input = CompressedLayer;
    type Output = FlippedLayer;

    fn name(&self) -> &'static str {
        "bit-flip"
    }

    fn run(&self, input: CompressedLayer) -> Result<FlippedLayer> {
        let CompressedLayer {
            mut job,
            sparsity,
            compression,
        } = input;
        let bitflip = if job.zero_column_target == 0 {
            None
        } else {
            let (flipped, stats) = flip_tensor(
                &job.weights,
                job.group_size,
                job.zero_column_target,
                self.encoding,
            )?;
            let compression_after =
                CompressStage::new(self.encoding).compress(&flipped, job.group_size)?;
            job.weights = flipped;
            Some(BitFlipSummary {
                zero_column_target: job.zero_column_target,
                groups: stats.groups,
                groups_modified: stats.groups_modified,
                rms_perturbation: stats.rms_perturbation,
                mean_zero_columns: stats.mean_zero_columns,
                compression_after,
            })
        };
        let profile = LayerSparsityProfile::from_weights(
            &job.weights,
            job.layer.expected_activation_sparsity(),
            job.group_size,
        )?;
        Ok(FlippedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            profile,
        })
    }
}

/// Selects the spatial unrolling for the layer from the accelerator's SU set.
#[derive(Debug, Clone)]
pub struct MapStage {
    /// The accelerator whose SU set is searched.
    pub accelerator: AcceleratorSpec,
}

impl MapStage {
    /// Creates the stage for an accelerator.
    pub fn new(accelerator: AcceleratorSpec) -> Self {
        Self { accelerator }
    }

    /// The mapping decision for one layer — usable without weights, since
    /// SU selection depends only on the loop nest.
    pub fn decide(&self, layer: &bitwave_dnn::layer::LayerSpec) -> MappingDecision {
        select_spatial_unrolling(layer, &self.accelerator.su_set)
    }
}

/// Output of [`MapStage`].
#[derive(Debug, Clone)]
pub struct MappedLayer {
    /// The (possibly flipped) job.
    pub job: LayerJob,
    /// Sparsity statistics of the pre-flip weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless (pre-flip) compression accounting.
    pub compression: CompressionSummary,
    /// Flip outcome, `None` when the target was 0.
    pub bitflip: Option<BitFlipSummary>,
    /// Sparsity profile of the final weights (from the bit-flip stage).
    pub profile: LayerSparsityProfile,
    /// The full mapping decision, consumed by the simulate stage.
    pub decision: MappingDecision,
}

impl PipelineStage for MapStage {
    type Input = FlippedLayer;
    type Output = MappedLayer;

    fn name(&self) -> &'static str {
        "map"
    }

    fn run(&self, input: FlippedLayer) -> Result<MappedLayer> {
        let decision = self.decide(&input.job.layer);
        Ok(MappedLayer {
            job: input.job,
            sparsity: input.sparsity,
            compression: input.compression,
            bitflip: input.bitflip,
            profile: input.profile,
            decision,
        })
    }
}

/// Evaluates the mapped layer on the accelerator's analytical performance and
/// energy model (Eqs. 1–5 of the paper).
#[derive(Debug, Clone)]
pub struct SimulateStage {
    /// The accelerator model to evaluate on.
    pub accelerator: AcceleratorSpec,
    /// Memory hierarchy shared by all modelled accelerators.
    pub memory: MemoryHierarchy,
    /// Unit-energy model.
    pub energy: EnergyModel,
}

impl SimulateStage {
    /// Creates the stage.
    pub fn new(accelerator: AcceleratorSpec, memory: MemoryHierarchy, energy: EnergyModel) -> Self {
        Self {
            accelerator,
            memory,
            energy,
        }
    }

    /// Evaluates a prepared layer under a mapping decision **by reference** —
    /// neither stage reads the weight tensor, so multi-accelerator sweeps can
    /// share one prepared layer set without cloning tensors.
    pub fn evaluate(&self, input: &FlippedLayer, decision: &MappingDecision) -> LayerReport {
        let job = &input.job;
        let result = evaluate_layer_with_mapping(
            &self.accelerator,
            &job.layer,
            decision,
            &input.profile,
            &self.memory,
            &self.energy,
        );
        LayerReport {
            network: job.network.clone(),
            layer: job.layer.name.clone(),
            weight_elements: job.weight_elements(),
            macs: job.layer.macs(),
            sparsity: input.sparsity,
            compression: input.compression,
            bitflip: input.bitflip,
            mapping: MappingSummary {
                su: decision.su.name.to_string(),
                utilization: decision.utilization,
                effective_macs_per_cycle: decision.effective_macs_per_cycle,
            },
            simulation: SimulationSummary {
                accelerator: self.accelerator.label.clone(),
                effective_macs: result.effective_macs,
                compute_cycles: result.compute_cycles,
                dram_cycles: result.dram_cycles,
                total_cycles: result.total_cycles,
                energy: result.energy,
            },
        }
    }
}

impl PipelineStage for SimulateStage {
    type Input = MappedLayer;
    type Output = LayerReport;

    fn name(&self) -> &'static str {
        "simulate"
    }

    fn run(&self, input: MappedLayer) -> Result<LayerReport> {
        let MappedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            profile,
            decision,
        } = input;
        let view = FlippedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            profile,
        };
        Ok(self.evaluate(&view, &decision))
    }
}
