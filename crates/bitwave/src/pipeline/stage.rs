//! The four typed stages of the layer pipeline.
//!
//! Each stage is a plain struct implementing [`PipelineStage`]: it consumes
//! the previous stage's typed output and produces its own, so the
//! compress → bit-flip → map → simulate chain is checked by the type system
//! and every intermediate is inspectable by experiment drivers that only
//! need a prefix of the chain (e.g. the Fig. 5 compression sweeps stop after
//! [`CompressStage`]).
//!
//! The chain performs its per-tensor analysis **once**: the compress stage
//! extracts the weight groups a single time, packs them into a
//! [`BitplaneTensor`] and derives statistics and BCS accounting from the
//! word-parallel planes, then hands the planes forward so the bit-flip stage
//! can build the accelerator-facing [`bitwave_accel::LayerAnalysis`] without
//! re-grouping, re-packing or re-compressing the unflipped tensor.  The
//! ZRE/CSR value-codec passes — needed only by the SCNN baseline — stay
//! deferred inside the analysis until a simulation actually reads them.

use crate::error::Result;
use crate::pipeline::job::LayerJob;
use crate::pipeline::report::{
    BitFlipSummary, CompressionSummary, LayerReport, MappingSummary, SimulationSummary,
};
use bitwave_accel::model::evaluate_layer_with_mapping;
use bitwave_accel::{AcceleratorSpec, EnergyModel, LayerAnalysis};
use bitwave_core::bitflip::flip_tensor;
use bitwave_core::compress::BcsCodec;
use bitwave_core::group::{extract_groups, GroupSize};
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dataflow::mapping::{select_spatial_unrolling, MappingDecision, MappingPolicy};
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dse::DseEngine;
use bitwave_tensor::bitplane::BitplaneTensor;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::handle::WeightHandle;

/// One typed stage of the pipeline.
pub trait PipelineStage {
    /// The stage's input.
    type Input;
    /// The stage's output.
    type Output;

    /// Short stage name for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Propagates any substrate error as [`crate::BitwaveError`].
    fn run(&self, input: Self::Input) -> Result<Self::Output>;
}

/// Compresses a layer's weights with sign-magnitude BCS and records its
/// sparsity statistics.
#[derive(Debug, Clone, Copy)]
pub struct CompressStage {
    /// Bit encoding used for column statistics and compression.
    pub encoding: Encoding,
}

/// BCS size accounting of **already-packed** bitplanes under `encoding` —
/// the single compressor both the compress and bit-flip stages use.  The
/// payload never materialises: [`BcsCodec::measure_packed`] counts stored
/// columns straight off the planes.  `original_len` is the *unpadded*
/// element count: compression ratios are measured against the real weight
/// storage, while the stored payload/index bits still account for the
/// hardware's zero-padded tail groups (the planes are packed from the
/// padded group data).
fn bcs_summary(
    encoding: Encoding,
    planes: &BitplaneTensor,
    original_len: usize,
    group_size: GroupSize,
) -> CompressionSummary {
    let sizes = BcsCodec::new(group_size, encoding).measure_packed(planes, original_len);
    CompressionSummary::from_sizes(&sizes, group_size.len())
}

/// The sign-magnitude BCS ratio the accelerator profile needs.  When
/// `summary` was already computed in sign-magnitude (the hardware encoding
/// and the default), its accounting is reused verbatim; only the
/// Fig. 4-style two's-complement pipelines pay for a second pass.
fn sm_bcs_ratio(
    summary_encoding: Encoding,
    summary: &CompressionSummary,
    planes: &BitplaneTensor,
    original_len: usize,
    group_size: GroupSize,
) -> f64 {
    if summary_encoding == Encoding::SignMagnitude {
        summary.cr_with_index
    } else {
        BcsCodec::new(group_size, Encoding::SignMagnitude)
            .measure_packed(planes, original_len)
            .compression_ratio_with_index()
    }
}

impl CompressStage {
    /// Creates the stage with the given encoding.
    pub fn new(encoding: Encoding) -> Self {
        Self { encoding }
    }

    /// BCS size accounting of already-packed bitplanes under this stage's
    /// encoding (see [`CompressedLayer::compression`]).
    pub fn summarize_planes(
        &self,
        planes: &BitplaneTensor,
        original_len: usize,
        group_size: GroupSize,
    ) -> CompressionSummary {
        bcs_summary(self.encoding, planes, original_len, group_size)
    }
}

/// Output of [`CompressStage`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedLayer {
    /// The job being processed (weights still unmodified).
    pub job: LayerJob,
    /// Sparsity statistics of the weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless BCS size accounting.
    pub compression: CompressionSummary,
    /// The encoding [`CompressedLayer::compression`] was computed under; the
    /// bit-flip stage consults it before reusing the accounting, so mixing
    /// stage encodings cannot silently mislabel a two's-complement summary
    /// as the profile's sign-magnitude ratio.
    pub encoding: Encoding,
    /// The bitplane-packed weight groups, packed (once) by the compress
    /// stage; the bit-flip stage reuses them to build the accelerator
    /// analysis instead of re-grouping or re-packing the tensor.
    pub planes: BitplaneTensor,
}

impl PipelineStage for CompressStage {
    type Input = LayerJob;
    type Output = CompressedLayer;

    fn name(&self) -> &'static str {
        "compress"
    }

    fn run(&self, job: LayerJob) -> Result<CompressedLayer> {
        // The single group-extraction and bitplane-packing pass of the
        // chain: statistics and BCS accounting both run word-parallel off
        // `planes`, and the planes travel downstream.
        let groups = extract_groups(&job.weights, job.group_size)?;
        let planes = groups.to_bitplanes();
        let sparsity = LayerSparsityStats::from_tensor_and_planes(&job.weights, &planes);
        let compression = self.summarize_planes(&planes, job.weights.data().len(), job.group_size);
        Ok(CompressedLayer {
            job,
            sparsity,
            compression,
            encoding: self.encoding,
            planes,
        })
    }
}

/// Applies the job's zero-column Bit-Flip target (no-op at target 0) and
/// re-compresses the flipped weights.
#[derive(Debug, Clone, Copy)]
pub struct BitFlipStage {
    /// Bit encoding the flip optimises for.
    pub encoding: Encoding,
}

impl BitFlipStage {
    /// Creates the stage with the given encoding.
    pub fn new(encoding: Encoding) -> Self {
        Self { encoding }
    }
}

/// Output of [`BitFlipStage`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlippedLayer {
    /// The job, with `weights` replaced by the flipped tensor when a flip
    /// was applied.
    pub job: LayerJob,
    /// Sparsity statistics of the pre-flip weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless (pre-flip) compression accounting.
    pub compression: CompressionSummary,
    /// Flip outcome, `None` when the target was 0.
    pub bitflip: Option<BitFlipSummary>,
    /// Shared sparsity analysis of the *final* (possibly flipped) weights,
    /// built once from the stages' own group extraction so the simulate
    /// stage can be re-run for many accelerators without re-analysing the
    /// same tensor; its ZRE/CSR value-codec ratios stay lazy until a
    /// value-sparsity baseline reads them.
    pub analysis: LayerAnalysis,
}

impl PipelineStage for BitFlipStage {
    type Input = CompressedLayer;
    type Output = FlippedLayer;

    fn name(&self) -> &'static str {
        "bit-flip"
    }

    fn run(&self, input: CompressedLayer) -> Result<FlippedLayer> {
        let CompressedLayer {
            mut job,
            sparsity,
            compression,
            encoding: compression_encoding,
            planes,
        } = input;
        let act = job.layer.expected_activation_sparsity();
        let (bitflip, analysis) = if job.zero_column_target == 0 {
            // Unflipped path: everything the analysis needs — statistics,
            // planes, BCS accounting — was already computed by the compress
            // stage, so nothing is re-derived here.  Reuse is keyed on the
            // encoding *that summary* was computed under, not this stage's.
            let bcs_ratio = sm_bcs_ratio(
                compression_encoding,
                &compression,
                &planes,
                job.weights.data().len(),
                job.group_size,
            );
            let analysis = LayerAnalysis::from_shared_parts(
                job.weights.clone(),
                act,
                &sparsity,
                &planes,
                bcs_ratio,
            );
            (None, analysis)
        } else {
            let (flipped, stats) = flip_tensor(
                &job.weights,
                job.group_size,
                job.zero_column_target,
                self.encoding,
            )?;
            // One group extraction + bitplane packing of the flipped tensor
            // feeds the post-flip accounting (under this stage's own
            // encoding — no throwaway compress stage), statistics and
            // accelerator analysis alike.
            let flipped_planes = extract_groups(&flipped, job.group_size)?.to_bitplanes();
            let compression_after = bcs_summary(
                self.encoding,
                &flipped_planes,
                flipped.data().len(),
                job.group_size,
            );
            let flipped_stats =
                LayerSparsityStats::from_tensor_and_planes(&flipped, &flipped_planes);
            let bcs_ratio = sm_bcs_ratio(
                self.encoding,
                &compression_after,
                &flipped_planes,
                flipped.data().len(),
                job.group_size,
            );
            let handle = WeightHandle::new(flipped);
            job.weights = handle.clone();
            let analysis = LayerAnalysis::from_shared_parts(
                handle,
                act,
                &flipped_stats,
                &flipped_planes,
                bcs_ratio,
            );
            (
                Some(BitFlipSummary {
                    zero_column_target: job.zero_column_target,
                    groups: stats.groups,
                    groups_modified: stats.groups_modified,
                    rms_perturbation: stats.rms_perturbation,
                    mean_zero_columns: stats.mean_zero_columns,
                    compression_after,
                }),
                analysis,
            )
        };
        Ok(FlippedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            analysis,
        })
    }
}

/// Selects the spatial unrolling for the layer: the Fig. 9 heuristic over
/// the accelerator's SU set ([`MappingPolicy::Heuristic`], the default) or
/// the memoized `bitwave-dse` design-space search
/// ([`MappingPolicy::Searched`]), which enumerates SU factorizations, loop
/// orders and tile sizes and picks the minimum-EDP mapping for the layer's
/// sparsity profile.
#[derive(Debug, Clone)]
pub struct MapStage {
    /// The accelerator whose SU set / lane budget is searched.
    pub accelerator: AcceleratorSpec,
    /// The selection policy.
    pub policy: MappingPolicy,
    /// Memory hierarchy the searched cost model evaluates against.
    pub memory: MemoryHierarchy,
    /// Unit-energy model the searched cost model evaluates against.
    pub energy: EnergyModel,
}

impl MapStage {
    /// Creates the stage for an accelerator with the heuristic policy and
    /// the paper-default cost tables.
    pub fn new(accelerator: AcceleratorSpec) -> Self {
        Self {
            accelerator,
            policy: MappingPolicy::default(),
            memory: MemoryHierarchy::bitwave_default(),
            energy: EnergyModel::finfet_16nm(),
        }
    }

    /// Overrides the selection policy (builder style).
    pub fn with_policy(mut self, policy: MappingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the cost tables the searched policy evaluates against
    /// (builder style).
    pub fn with_cost_tables(mut self, memory: MemoryHierarchy, energy: EnergyModel) -> Self {
        self.memory = memory;
        self.energy = energy;
        self
    }

    /// The DSE engine backing [`MappingPolicy::Searched`] decisions: shares
    /// the process-wide memo cache, so identical layers are searched once
    /// across models, runs and served requests.
    fn dse_engine(&self) -> DseEngine {
        DseEngine::shared(self.memory, self.energy)
    }

    /// The mapping decision for one layer given its sparsity profile — the
    /// searched policy is sparsity-adaptive, so the profile steers the
    /// winner.
    ///
    /// # Errors
    ///
    /// [`crate::BitwaveError::Mapping`] for an empty SU set or degenerate
    /// layer, [`crate::BitwaveError::Dse`] when the search itself fails.
    pub fn decide_with_profile(
        &self,
        layer: &bitwave_dnn::layer::LayerSpec,
        profile: &bitwave_accel::LayerSparsityProfile,
    ) -> Result<MappingDecision> {
        match self.policy {
            MappingPolicy::Heuristic => {
                Ok(select_spatial_unrolling(layer, &self.accelerator.su_set)?)
            }
            MappingPolicy::Searched => {
                let result = self
                    .dse_engine()
                    .search_layer(&self.accelerator, layer, profile)?;
                Ok(result.winner.to_decision(&layer.name))
            }
        }
    }

    /// The mapping decision for one layer without weights.  The heuristic
    /// needs only the loop nest; the searched policy falls back to a dense
    /// (sparsity-free) profile, so weight-free mapping sweeps stay possible.
    ///
    /// # Errors
    ///
    /// See [`MapStage::decide_with_profile`].
    pub fn decide(&self, layer: &bitwave_dnn::layer::LayerSpec) -> Result<MappingDecision> {
        // The heuristic ignores the profile, so one delegation covers both
        // policies.
        self.decide_with_profile(layer, &bitwave_accel::LayerSparsityProfile::dense(8))
    }
}

/// Output of [`MapStage`].
#[derive(Debug, Clone)]
pub struct MappedLayer {
    /// The (possibly flipped) job.
    pub job: LayerJob,
    /// Sparsity statistics of the pre-flip weights.
    pub sparsity: LayerSparsityStats,
    /// Lossless (pre-flip) compression accounting.
    pub compression: CompressionSummary,
    /// Flip outcome, `None` when the target was 0.
    pub bitflip: Option<BitFlipSummary>,
    /// Shared sparsity analysis of the final weights (from the bit-flip
    /// stage).
    pub analysis: LayerAnalysis,
    /// The full mapping decision, consumed by the simulate stage.
    pub decision: MappingDecision,
}

impl PipelineStage for MapStage {
    type Input = FlippedLayer;
    type Output = MappedLayer;

    fn name(&self) -> &'static str {
        "map"
    }

    fn run(&self, input: FlippedLayer) -> Result<MappedLayer> {
        let decision = self.decide_with_profile(
            &input.job.layer,
            input.analysis.profile_for(&self.accelerator),
        )?;
        Ok(MappedLayer {
            job: input.job,
            sparsity: input.sparsity,
            compression: input.compression,
            bitflip: input.bitflip,
            analysis: input.analysis,
            decision,
        })
    }
}

/// Evaluates the mapped layer on the accelerator's analytical performance and
/// energy model (Eqs. 1–5 of the paper).
#[derive(Debug, Clone)]
pub struct SimulateStage {
    /// The accelerator model to evaluate on.
    pub accelerator: AcceleratorSpec,
    /// Memory hierarchy shared by all modelled accelerators.
    pub memory: MemoryHierarchy,
    /// Unit-energy model.
    pub energy: EnergyModel,
}

impl SimulateStage {
    /// Creates the stage.
    pub fn new(accelerator: AcceleratorSpec, memory: MemoryHierarchy, energy: EnergyModel) -> Self {
        Self {
            accelerator,
            memory,
            energy,
        }
    }

    /// Evaluates a prepared layer under a mapping decision **by reference** —
    /// neither stage reads the weight tensor, so multi-accelerator sweeps can
    /// share one prepared layer set without cloning tensors.  The profile is
    /// picked per accelerator: only value-sparsity machines (SCNN) trigger
    /// the analysis' lazy ZRE/CSR passes.
    pub fn evaluate(&self, input: &FlippedLayer, decision: &MappingDecision) -> LayerReport {
        let job = &input.job;
        let result = evaluate_layer_with_mapping(
            &self.accelerator,
            &job.layer,
            decision,
            input.analysis.profile_for(&self.accelerator),
            &self.memory,
            &self.energy,
        );
        LayerReport {
            network: job.network.clone(),
            layer: job.layer.name.clone(),
            weight_elements: job.weight_elements(),
            macs: job.layer.macs(),
            sparsity: input.sparsity,
            compression: input.compression,
            bitflip: input.bitflip,
            mapping: MappingSummary {
                su: decision.label.clone(),
                utilization: decision.utilization,
                effective_macs_per_cycle: decision.effective_macs_per_cycle,
            },
            simulation: SimulationSummary {
                accelerator: self.accelerator.label.clone(),
                effective_macs: result.effective_macs,
                compute_cycles: result.compute_cycles,
                dram_cycles: result.dram_cycles,
                total_cycles: result.total_cycles,
                energy: result.energy,
                boundedness: result.boundedness,
            },
        }
    }
}

impl PipelineStage for SimulateStage {
    type Input = MappedLayer;
    type Output = LayerReport;

    fn name(&self) -> &'static str {
        "simulate"
    }

    fn run(&self, input: MappedLayer) -> Result<LayerReport> {
        let MappedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            analysis,
            decision,
        } = input;
        let view = FlippedLayer {
            job,
            sparsity,
            compression,
            bitflip,
            analysis,
        };
        Ok(self.evaluate(&view, &decision))
    }
}
