//! The unit of pipeline work: one layer with its weights and targets.

use crate::context::ExperimentContext;
use crate::error::{BitwaveError, Result};
use bitwave_core::group::GroupSize;
use bitwave_core::prelude::FlipStrategy;
use bitwave_dnn::layer::LayerSpec;
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;
use bitwave_tensor::handle::WeightHandle;

/// One layer's worth of pipeline input: the layer specification, its
/// (synthetic) Int8 weights, and the per-layer knobs sliced out of the
/// experiment context — group size and Bit-Flip target.
///
/// The weights are carried by a shared [`WeightHandle`]: planning a job from
/// a [`NetworkWeights`] set and cloning the job (as the parallel dispatcher
/// does, once per rayon task) bump reference counts instead of deep-copying
/// tensors.  Only the Bit-Flip stage replaces the handle, and then with a
/// freshly constructed flipped tensor — never with a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerJob {
    /// Network the layer belongs to.
    pub network: String,
    /// The layer specification (loop nest, kind, sensitivity).
    pub layer: LayerSpec,
    /// Shared handle to the layer's Int8 weights.
    pub weights: WeightHandle,
    /// BCS group size for compression/statistics.
    pub group_size: GroupSize,
    /// Zero-column target for the Bit-Flip stage (0 = lossless, no flip).
    pub zero_column_target: u32,
}

impl LayerJob {
    /// Plans one job per layer of `spec`, generating sampled weights from the
    /// context and reading each layer's Bit-Flip target from `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::EmptyModel`] for a layerless network and
    /// [`BitwaveError::MissingLayer`] if weight generation skipped a layer.
    pub fn plan(
        ctx: &ExperimentContext,
        spec: &NetworkSpec,
        strategy: &FlipStrategy,
    ) -> Result<Vec<LayerJob>> {
        let weights = ctx.weights(spec);
        Self::plan_with_weights(ctx, spec, &weights, strategy)
    }

    /// Plans jobs from an existing weight set (e.g. weights that were already
    /// flipped or PTQ-quantised by an experiment driver).
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::EmptyModel`] for a layerless network and
    /// [`BitwaveError::MissingLayer`] if `weights` lacks a layer of `spec`.
    pub fn plan_with_weights(
        ctx: &ExperimentContext,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
        strategy: &FlipStrategy,
    ) -> Result<Vec<LayerJob>> {
        if spec.layers.is_empty() {
            return Err(BitwaveError::EmptyModel {
                network: spec.name.clone(),
            });
        }
        spec.layers
            .iter()
            .map(|layer| {
                let handle = weights.layer_handle(&layer.name).ok_or_else(|| {
                    BitwaveError::MissingLayer {
                        network: spec.name.clone(),
                        layer: layer.name.clone(),
                    }
                })?;
                // A layer targeted by the strategy is grouped at the
                // strategy's chosen group size (the hardware configures one
                // group size per layer); untargeted layers use the context's
                // default.  This keeps the pipeline's flip identical to
                // `NetworkWeights::apply_flip_strategy`.
                let (group_size, zero_column_target) =
                    strategy
                        .best_for_layer(&layer.name)
                        .map_or((ctx.group_size, 0), |(g, z)| {
                            if z > 0 {
                                (g, z)
                            } else {
                                (ctx.group_size, 0)
                            }
                        });
                Ok(LayerJob {
                    network: spec.name.clone(),
                    layer: layer.clone(),
                    // Shares the tensor with the weight set — no deep copy.
                    weights: handle.clone(),
                    group_size,
                    zero_column_target,
                })
            })
            .collect()
    }

    /// Number of weight elements carried by this job.
    pub fn weight_elements(&self) -> usize {
        self.weights.data().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::resnet18;

    #[test]
    fn plan_yields_one_job_per_layer_in_order() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let jobs = LayerJob::plan(&ctx, &net, &FlipStrategy::new()).unwrap();
        assert_eq!(jobs.len(), net.layers.len());
        for (job, layer) in jobs.iter().zip(&net.layers) {
            assert_eq!(job.layer.name, layer.name);
            assert_eq!(job.network, "ResNet18");
            assert_eq!(job.zero_column_target, 0);
            assert!(job.weight_elements() > 0);
        }
    }

    #[test]
    fn planning_shares_weight_allocations_without_copies() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let weights = ctx.weights(&net);
        let _guard = bitwave_tensor::copy_metrics::exclusive();
        let counter = bitwave_tensor::copy_metrics::CopyCounter::snapshot();
        let jobs = LayerJob::plan_with_weights(&ctx, &net, &weights, &FlipStrategy::new()).unwrap();
        let cloned: Vec<LayerJob> = jobs.clone();
        assert_eq!(
            counter.delta(),
            0,
            "planning and job cloning must not deep-copy weight tensors"
        );
        for job in &cloned {
            let source = weights.layer_handle(&job.layer.name).unwrap();
            assert!(job.weights.shares_allocation_with(source));
        }
    }

    #[test]
    fn strategy_targets_reach_the_jobs() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let strategy = ctx.default_bitflip_strategy(&net);
        let jobs = LayerJob::plan(&ctx, &net, &strategy).unwrap();
        let targeted: Vec<&LayerJob> = jobs.iter().filter(|j| j.zero_column_target > 0).collect();
        assert!(
            !targeted.is_empty(),
            "default strategy must flip some layers"
        );
        assert!(jobs.iter().any(|j| j.zero_column_target == 0));
    }

    #[test]
    fn strategy_group_size_overrides_context_default() {
        use bitwave_core::group::GroupSize;
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let mut strategy = FlipStrategy::new();
        strategy.set("layer4.1.conv2", GroupSize::G8, 5);
        let jobs = LayerJob::plan(&ctx, &net, &strategy).unwrap();
        let targeted = jobs
            .iter()
            .find(|j| j.layer.name == "layer4.1.conv2")
            .unwrap();
        assert_eq!(targeted.group_size, GroupSize::G8);
        assert_eq!(targeted.zero_column_target, 5);
        let untargeted = jobs.iter().find(|j| j.layer.name == "conv1").unwrap();
        assert_eq!(untargeted.group_size, ctx.group_size);
    }

    #[test]
    fn missing_layer_weights_are_an_error() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let mut other = bitwave_dnn::models::mobilenet_v2();
        other.name = net.name.clone();
        let foreign_weights = ctx.weights(&other);
        let err = LayerJob::plan_with_weights(&ctx, &net, &foreign_weights, &FlipStrategy::new())
            .unwrap_err();
        assert!(matches!(err, BitwaveError::MissingLayer { .. }));
    }

    #[test]
    fn empty_model_is_an_error() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let mut net = resnet18();
        net.layers.clear();
        let err = LayerJob::plan(&ctx, &net, &FlipStrategy::new()).unwrap_err();
        assert!(matches!(err, BitwaveError::EmptyModel { .. }));
    }
}
