//! The unified per-layer experiment pipeline.
//!
//! Every result in the BitWave paper flows through the same per-layer chain:
//! **compress** (sign-magnitude BCS, Section III-C) → **bit-flip** (the
//! one-shot zero-column perturbation, Section III-D) → **map** (spatial
//! unrolling selection, Section IV-C) → **simulate** (the Eq. 1–5 analytical
//! performance/energy model).  The seed of this repository re-implemented
//! that chain ad hoc in every experiment driver; this module expresses it
//! once, as typed stages over a [`LayerJob`], so that drivers, tests and
//! benches all share one code path.
//!
//! [`Pipeline`] plans one job per model layer and runs the chain either
//! sequentially ([`Pipeline::run_model`]) or across all cores with rayon
//! ([`Pipeline::run_model_parallel`]).  Both produce **bit-identical**
//! [`ModelReport`]s: jobs are independent and results are collected in layer
//! order.
//!
//! The map stage honours the context's
//! [`bitwave_dataflow::mapping::MappingPolicy`]: `Heuristic` (default)
//! reproduces the paper's one-shot Fig. 9 selection over the accelerator's
//! SU set, `Searched` routes every layer through the memoized `bitwave-dse`
//! design-space exploration ([`Pipeline::search_model_weights`] exposes the
//! full per-layer comparison).  All goldens are pinned to the default
//! policy.
//!
//! # Zero-copy, single-analysis execution
//!
//! A [`LayerJob`] carries its weights behind a shared
//! [`bitwave_tensor::handle::WeightHandle`]: planning jobs from a
//! [`NetworkWeights`] set and cloning jobs for parallel dispatch bump
//! reference counts instead of deep-copying tensors (`bench_pipeline` gates
//! on a copy count of **zero** via [`bitwave_tensor::copy_metrics`]).  The
//! expensive per-tensor analysis happens **once per layer**: the compress
//! stage extracts the weight groups a single time, packs them into a
//! word-parallel [`bitwave_tensor::bitplane::BitplaneTensor`] and derives
//! statistics and BCS accounting from the packed planes, the bit-flip stage
//! reuses those parts to build
//! the accelerator-facing [`bitwave_accel::LayerAnalysis`], and the ZRE/CSR
//! value-codec passes that only the SCNN baseline reads stay **lazy** until
//! a value-sparsity simulation asks for them.
//!
//! The refactor that introduced this is pinned by golden snapshots
//! (`tests/golden/`, byte-compared in `tests/golden_reports.rs`; regenerate
//! intentionally with `UPDATE_GOLDEN=1 cargo test -q --test golden_reports`)
//! and by property tests (`tests/pipeline_properties.rs`).
//!
//! ```
//! use bitwave::context::ExperimentContext;
//! use bitwave::pipeline::Pipeline;
//! use bitwave::dnn::models::resnet18;
//!
//! let ctx = ExperimentContext::default().with_sample_cap(2_000);
//! let report = Pipeline::new(ctx).run_model(&resnet18()).unwrap();
//! assert_eq!(report.layers.len(), resnet18().layers.len());
//! assert!(report.weight_compression_ratio > 1.0);
//! ```

pub mod job;
pub mod report;
pub mod stage;

pub use job::LayerJob;
pub use report::{
    BitFlipSummary, CompressionSummary, LayerReport, MappingSummary, ModelReport, SimulationSummary,
};
pub use stage::{
    BitFlipStage, CompressStage, CompressedLayer, FlippedLayer, MapStage, MappedLayer,
    PipelineStage, SimulateStage,
};

use crate::context::ExperimentContext;
use crate::error::Result;
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_core::prelude::FlipStrategy;
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;
use bitwave_tensor::bits::Encoding;
use rayon::prelude::*;

/// The configured compress → bit-flip → map → simulate pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    ctx: ExperimentContext,
    accelerator: AcceleratorSpec,
    strategy: FlipStrategy,
    encoding: Encoding,
}

impl Pipeline {
    /// Creates a pipeline targeting the fully optimised BitWave accelerator
    /// with no Bit-Flip (lossless) and sign-magnitude encoding.
    pub fn new(ctx: ExperimentContext) -> Self {
        Self {
            ctx,
            accelerator: AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            strategy: FlipStrategy::new(),
            encoding: Encoding::SignMagnitude,
        }
    }

    /// Targets a different accelerator model (builder style).
    pub fn with_accelerator(mut self, accelerator: AcceleratorSpec) -> Self {
        self.accelerator = accelerator;
        self
    }

    /// Applies an explicit Bit-Flip strategy (builder style).
    pub fn with_strategy(mut self, strategy: FlipStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Applies the context's default one-shot Bit-Flip strategy for `spec`
    /// (builder style).
    pub fn with_default_bitflip(mut self, spec: &NetworkSpec) -> Self {
        self.strategy = self.ctx.default_bitflip_strategy(spec);
        self
    }

    /// Overrides the bit encoding (builder style); the default sign-magnitude
    /// encoding is what the BitWave hardware uses.
    pub fn with_encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// The experiment context this pipeline slices its jobs from.
    pub fn context(&self) -> &ExperimentContext {
        &self.ctx
    }

    /// The accelerator the simulate stage targets.
    pub fn accelerator(&self) -> &AcceleratorSpec {
        &self.accelerator
    }

    /// Plans one [`LayerJob`] per layer of `spec`, generating sampled
    /// synthetic weights from the context.
    ///
    /// # Errors
    ///
    /// See [`LayerJob::plan`].
    pub fn jobs(&self, spec: &NetworkSpec) -> Result<Vec<LayerJob>> {
        LayerJob::plan(&self.ctx, spec, &self.strategy)
    }

    /// Plans jobs from an existing weight set instead of generating one.
    ///
    /// # Errors
    ///
    /// See [`LayerJob::plan_with_weights`].
    pub fn jobs_with_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<Vec<LayerJob>> {
        LayerJob::plan_with_weights(&self.ctx, spec, weights, &self.strategy)
    }

    /// The map stage configured from this pipeline's context: the heuristic
    /// by default, the memoized DSE search under
    /// [`bitwave_dataflow::mapping::MappingPolicy::Searched`].
    fn map_stage(&self) -> MapStage {
        MapStage::new(self.accelerator.clone())
            .with_policy(self.ctx.mapping_policy)
            .with_cost_tables(self.ctx.memory, self.ctx.energy)
    }

    /// Runs one job through all four stages.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error.
    pub fn run_job(&self, job: LayerJob) -> Result<LayerReport> {
        let compressed = CompressStage::new(self.encoding).run(job)?;
        let flipped = BitFlipStage::new(self.encoding).run(compressed)?;
        let mapped = self.map_stage().run(flipped)?;
        SimulateStage::new(self.accelerator.clone(), self.ctx.memory, self.ctx.energy).run(mapped)
    }

    /// Runs only the compress stage over all layers of `spec` — the prefix of
    /// the chain the sparsity/compression experiments need.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn compress_model(&self, spec: &NetworkSpec) -> Result<Vec<CompressedLayer>> {
        let stage = CompressStage::new(self.encoding);
        self.jobs(spec)?
            .into_iter()
            .map(|job| stage.run(job))
            .collect()
    }

    /// Like [`Pipeline::compress_model`] but over an existing weight set.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn compress_model_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<Vec<CompressedLayer>> {
        let stage = CompressStage::new(self.encoding);
        self.jobs_with_weights(spec, weights)?
            .into_iter()
            .map(|job| stage.run(job))
            .collect()
    }

    /// Whole-model weight compression ratio (index included) of an existing
    /// weight set at the context's group size.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn network_compression(&self, spec: &NetworkSpec, weights: &NetworkWeights) -> Result<f64> {
        let compressed = self.compress_model_weights(spec, weights)?;
        Ok(CompressionSummary::aggregate_ratio(
            compressed.iter().map(|layer| &layer.compression),
        ))
    }

    /// Runs the map stage for every layer of `spec` (the Fig. 9 view of the
    /// dynamic dataflow choice).  The heuristic needs only the loop nest, so
    /// no weights are generated and no compression runs; under the searched
    /// policy a dense (sparsity-free) profile drives the search.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BitwaveError::EmptyModel`] for a layerless network
    /// and propagates mapping/search errors.
    pub fn map_model(&self, spec: &NetworkSpec) -> Result<Vec<MappingSummary>> {
        if spec.layers.is_empty() {
            return Err(crate::error::BitwaveError::EmptyModel {
                network: spec.name.clone(),
            });
        }
        let map = self.map_stage();
        spec.layers
            .iter()
            .map(|layer| {
                let decision = map.decide(layer)?;
                Ok(MappingSummary {
                    su: decision.label.clone(),
                    utilization: decision.utilization,
                    effective_macs_per_cycle: decision.effective_macs_per_cycle,
                })
            })
            .collect()
    }

    /// Runs the compress + bit-flip prefix over every layer of `spec` with an
    /// existing weight set, yielding accelerator-independent [`FlippedLayer`]s
    /// (including each layer's shared sparsity analysis, whose ZRE/CSR codec
    /// ratios stay lazy).  Feed the result to [`Pipeline::simulate_prepared`]
    /// once per accelerator to evaluate many machines without re-analysing
    /// the same tensors.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn prepare_with_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<Vec<FlippedLayer>> {
        let compress = CompressStage::new(self.encoding);
        let flip = BitFlipStage::new(self.encoding);
        self.jobs_with_weights(spec, weights)?
            .into_iter()
            .map(|job| flip.run(compress.run(job)?))
            .collect()
    }

    /// Runs the map + simulate suffix over already prepared layers on this
    /// pipeline's accelerator.
    ///
    /// # Errors
    ///
    /// Propagates stage errors.
    pub fn simulate_prepared(
        &self,
        spec: &NetworkSpec,
        prepared: &[FlippedLayer],
    ) -> Result<ModelReport> {
        let map = self.map_stage();
        let simulate =
            SimulateStage::new(self.accelerator.clone(), self.ctx.memory, self.ctx.energy);
        // By-reference evaluation: the map/simulate suffix never reads the
        // weight tensors, so nothing is cloned per accelerator.
        let layers: Vec<LayerReport> = prepared
            .iter()
            .map(|layer| {
                let decision = map.decide_with_profile(
                    &layer.job.layer,
                    layer.analysis.profile_for(&self.accelerator),
                )?;
                Ok(simulate.evaluate(layer, &decision))
            })
            .collect::<Result<_>>()?;
        Ok(self.aggregate(spec, layers))
    }

    /// Runs the compress + bit-flip prefix over `spec` and then the full
    /// memoized design-space exploration per layer, returning the per-layer
    /// heuristic-vs-searched comparison with Pareto fronts — the payload of
    /// `bitwave-serve`'s `POST /v1/search`.  Independent of the pipeline's
    /// own [`bitwave_dataflow::mapping::MappingPolicy`]: the comparison
    /// always evaluates both policies.
    ///
    /// # Errors
    ///
    /// Propagates planning, stage and search errors.
    pub fn search_model_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<bitwave_dse::NetworkSearch> {
        let prepared = self.prepare_with_weights(spec, weights)?;
        let profiles: Vec<bitwave_accel::LayerSparsityProfile> = prepared
            .iter()
            .map(|layer| *layer.analysis.profile_for(&self.accelerator))
            .collect();
        let engine = bitwave_dse::DseEngine::shared(self.ctx.memory, self.ctx.energy);
        Ok(engine.search_network(&self.accelerator, spec, &profiles)?)
    }

    /// Runs the full chain over every layer sequentially.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn run_model(&self, spec: &NetworkSpec) -> Result<ModelReport> {
        let layers: Vec<LayerReport> = self
            .jobs(spec)?
            .into_iter()
            .map(|job| self.run_job(job))
            .collect::<Result<_>>()?;
        Ok(self.aggregate(spec, layers))
    }

    /// Runs the full chain with one rayon task per layer, using every core.
    /// Produces a report **bit-identical** to [`Pipeline::run_model`]: jobs
    /// are independent and collected in layer order.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn run_model_parallel(&self, spec: &NetworkSpec) -> Result<ModelReport> {
        let jobs = self.jobs(spec)?;
        let layers: Vec<LayerReport> = jobs
            .par_iter()
            .map(|job| self.run_job(job.clone()))
            .collect::<Result<_>>()?;
        Ok(self.aggregate(spec, layers))
    }

    /// Like [`Pipeline::run_model`] but over an existing weight set.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn run_model_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<ModelReport> {
        let layers: Vec<LayerReport> = self
            .jobs_with_weights(spec, weights)?
            .into_iter()
            .map(|job| self.run_job(job))
            .collect::<Result<_>>()?;
        Ok(self.aggregate(spec, layers))
    }

    /// Like [`Pipeline::run_model_parallel`] but over an existing weight set.
    ///
    /// # Errors
    ///
    /// Propagates planning and stage errors.
    pub fn run_model_weights_parallel(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<ModelReport> {
        let jobs = self.jobs_with_weights(spec, weights)?;
        let layers: Vec<LayerReport> = jobs
            .par_iter()
            .map(|job| self.run_job(job.clone()))
            .collect::<Result<_>>()?;
        Ok(self.aggregate(spec, layers))
    }

    fn aggregate(&self, spec: &NetworkSpec, layers: Vec<LayerReport>) -> ModelReport {
        ModelReport::from_layers(spec.name.clone(), self.accelerator.label.clone(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::{mobilenet_v2, resnet18};

    fn ctx() -> ExperimentContext {
        ExperimentContext::default().with_sample_cap(2_000)
    }

    #[test]
    fn sequential_and_parallel_runs_are_bit_identical() {
        let pipeline = Pipeline::new(ctx()).with_default_bitflip(&resnet18());
        let net = resnet18();
        let sequential = pipeline.run_model(&net).unwrap();
        let parallel = pipeline.run_model_parallel(&net).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn compression_accounting_uses_unpadded_original_size() {
        // conv1 has C = 3 input channels, far from a multiple of G16: the
        // hardware pads each group, but the compression *ratio* must be
        // measured against the real (unpadded) weight storage.
        let net = resnet18();
        let report = Pipeline::new(ctx()).run_model(&net).unwrap();
        for layer in &report.layers {
            assert_eq!(
                layer.compression.original_bits,
                layer.weight_elements * 8,
                "{}: original_bits must not count padding",
                layer.layer
            );
        }
        // Heavily padded grouping genuinely stores more than dense: conv1's
        // honest CR is below 1 (the accelerator model's dense fallback case).
        let conv1 = report.layers.iter().find(|l| l.layer == "conv1").unwrap();
        assert!(conv1.compression.cr_with_index < 1.0);
    }

    #[test]
    fn prepared_suffix_matches_full_runs() {
        // prepare_with_weights + simulate_prepared must reproduce run_model
        // exactly — the multi-accelerator fast path is not allowed to drift.
        let context = ctx();
        let net = resnet18();
        let weights = context.weights(&net);
        let pipeline = Pipeline::new(context).with_default_bitflip(&net);
        let prepared = pipeline.prepare_with_weights(&net, &weights).unwrap();
        let via_suffix = pipeline.simulate_prepared(&net, &prepared).unwrap();
        let full = pipeline.run_model_weights(&net, &weights).unwrap();
        assert_eq!(via_suffix, full);
    }

    #[test]
    fn reports_cover_every_layer_in_order() {
        let net = resnet18();
        let report = Pipeline::new(ctx()).run_model(&net).unwrap();
        assert_eq!(report.layers.len(), net.layers.len());
        for (layer_report, layer) in report.layers.iter().zip(&net.layers) {
            assert_eq!(layer_report.layer, layer.name);
            assert!(layer_report.simulation.total_cycles > 0.0);
            assert!(layer_report.compression.cr_with_index > 0.0);
            assert!(
                layer_report.bitflip.is_none(),
                "lossless pipeline must not flip"
            );
        }
        assert_eq!(report.accelerator, "BitWave+DF+SM+BF");
        assert!(report.weight_compression_ratio > 1.0);
        assert!(report.total_cycles > 0.0);
    }

    #[test]
    fn bitflip_stage_improves_compression_on_targeted_layers() {
        let net = resnet18();
        let context = ctx();
        let strategy = context.default_bitflip_strategy(&net);
        let report = Pipeline::new(context)
            .with_strategy(strategy)
            .run_model(&net)
            .unwrap();
        let flipped: Vec<_> = report
            .layers
            .iter()
            .filter_map(|l| l.bitflip.as_ref().map(|b| (l, b)))
            .collect();
        assert!(!flipped.is_empty());
        for (layer, flip) in flipped {
            assert!(flip.mean_zero_columns >= f64::from(flip.zero_column_target));
            assert!(
                flip.compression_after.cr_with_index >= layer.compression.cr_with_index,
                "{}: flip must not hurt compression",
                layer.layer
            );
        }
    }

    #[test]
    fn stage_analysis_matches_monolithic_profile_constructor() {
        // The single-pass path (groups/stats/BCS extracted once in the
        // compress stage, reused by the bit-flip stage) must agree exactly
        // with `LayerSparsityProfile::from_weights` on the final weights —
        // for both unflipped and flipped layers.
        use bitwave_accel::LayerSparsityProfile;
        let context = ctx();
        let net = resnet18();
        let weights = context.weights(&net);
        let pipeline = Pipeline::new(context).with_default_bitflip(&net);
        let prepared = pipeline.prepare_with_weights(&net, &weights).unwrap();
        assert!(prepared.iter().any(|l| l.bitflip.is_some()));
        assert!(prepared.iter().any(|l| l.bitflip.is_none()));
        for layer in &prepared {
            assert!(
                !layer.analysis.value_codecs_computed(),
                "{}: ZRE/CSR must stay lazy until a SotA simulation asks",
                layer.job.layer.name
            );
            let monolithic = LayerSparsityProfile::from_weights(
                &layer.job.weights,
                layer.job.layer.expected_activation_sparsity(),
                layer.job.group_size,
            )
            .unwrap();
            assert_eq!(*layer.analysis.full_profile(), monolithic);
        }
    }

    #[test]
    fn bitwave_only_runs_never_trigger_value_codec_passes() {
        // A BitWave (BCS) simulation reads only the core profile; the lazy
        // ZRE/CSR passes must fire for SCNN and only for SCNN.
        let context = ctx();
        let net = resnet18();
        let weights = context.weights(&net);
        let pipeline = Pipeline::new(context);
        let prepared = pipeline.prepare_with_weights(&net, &weights).unwrap();
        pipeline.simulate_prepared(&net, &prepared).unwrap();
        assert!(prepared.iter().all(|l| !l.analysis.value_codecs_computed()));
        let scnn = pipeline
            .clone()
            .with_accelerator(AcceleratorSpec::scnn())
            .simulate_prepared(&net, &prepared)
            .unwrap();
        assert!(prepared.iter().all(|l| l.analysis.value_codecs_computed()));
        assert!(scnn.total_cycles > 0.0);
    }

    #[test]
    fn flipped_compression_accounting_matches_a_fresh_compress_stage() {
        // The bit-flip stage reuses its own encoding/compressor for the
        // post-flip accounting; the numbers must equal what the compress
        // stage itself reports on the flipped weights.
        let context = ctx();
        let net = resnet18();
        let strategy = context.default_bitflip_strategy(&net);
        let pipeline = Pipeline::new(context).with_strategy(strategy);
        let compress = CompressStage::new(Encoding::SignMagnitude);
        let flip = BitFlipStage::new(Encoding::SignMagnitude);
        let mut flipped_seen = 0usize;
        for job in pipeline.jobs(&net).unwrap() {
            let flipped = flip.run(compress.run(job).unwrap()).unwrap();
            let Some(summary) = &flipped.bitflip else {
                continue;
            };
            flipped_seen += 1;
            // Re-run the compress stage on the flipped job from scratch.
            let recompressed = compress.run(flipped.job.clone()).unwrap();
            assert_eq!(summary.compression_after, recompressed.compression);
            assert_eq!(
                summary.compression_after.cr_with_index,
                flipped.analysis.core_profile().bcs_compression_ratio,
                "analysis must reuse the post-flip BCS accounting"
            );
        }
        assert!(flipped_seen > 0, "strategy must flip some layers");
    }

    #[test]
    fn mixed_stage_encodings_still_yield_a_sign_magnitude_profile_ratio() {
        // A two's-complement compress stage feeding a sign-magnitude
        // bit-flip stage (or vice versa) must not mislabel the TC summary as
        // the profile's SM BCS ratio: reuse is keyed on the encoding the
        // summary was computed under.
        use bitwave_accel::LayerSparsityProfile;
        let pipeline = Pipeline::new(ctx());
        let net = resnet18();
        let job = pipeline
            .jobs(&net)
            .unwrap()
            .into_iter()
            .find(|j| j.layer.name == "layer3.0.conv1")
            .unwrap();
        let reference = LayerSparsityProfile::from_weights(
            &job.weights,
            job.layer.expected_activation_sparsity(),
            job.group_size,
        )
        .unwrap();
        for (compress_enc, flip_enc) in [
            (Encoding::TwosComplement, Encoding::SignMagnitude),
            (Encoding::SignMagnitude, Encoding::TwosComplement),
            (Encoding::TwosComplement, Encoding::TwosComplement),
        ] {
            let compressed = CompressStage::new(compress_enc).run(job.clone()).unwrap();
            assert_eq!(compressed.encoding, compress_enc);
            let flipped = BitFlipStage::new(flip_enc).run(compressed).unwrap();
            assert_eq!(
                flipped.analysis.core_profile().bcs_compression_ratio,
                reference.bcs_compression_ratio,
                "profile BCS ratio must be sign-magnitude for ({compress_enc:?}, {flip_enc:?})"
            );
        }
    }

    #[test]
    fn mapping_summaries_match_full_reports() {
        let net = mobilenet_v2();
        let pipeline = Pipeline::new(ctx());
        let mappings = pipeline.map_model(&net).unwrap();
        let report = pipeline.run_model(&net).unwrap();
        assert_eq!(mappings.len(), report.layers.len());
        for (summary, layer) in mappings.iter().zip(&report.layers) {
            assert_eq!(summary.su, layer.mapping.su);
            assert_eq!(summary.utilization, layer.mapping.utilization);
        }
    }

    #[test]
    fn dense_accelerator_reports_no_compression_gain_in_cycles() {
        let net = resnet18();
        let dense = Pipeline::new(ctx())
            .with_accelerator(AcceleratorSpec::dense())
            .run_model(&net)
            .unwrap();
        let bitwave = Pipeline::new(ctx()).run_model(&net).unwrap();
        assert!(bitwave.total_cycles < dense.total_cycles);
        assert!(bitwave.speedup_over(&dense) > 1.0);
        assert!(dense.speedup_over(&dense) == 1.0);
    }

    #[test]
    fn searched_policy_never_loses_to_the_heuristic_on_edp() {
        use bitwave_dataflow::mapping::MappingPolicy;
        let net = resnet18();
        let heuristic = Pipeline::new(ctx()).run_model(&net).unwrap();
        let searched = Pipeline::new(ctx().with_mapping_policy(MappingPolicy::Searched))
            .run_model(&net)
            .unwrap();
        let edp = |r: &ModelReport| r.total_cycles * r.energy.total_pj();
        assert!(
            edp(&searched) <= edp(&heuristic),
            "searched EDP {:.3e} must not exceed heuristic EDP {:.3e}",
            edp(&searched),
            edp(&heuristic)
        );
        // Searched reports surface the mapping descriptors.
        assert!(searched
            .layers
            .iter()
            .all(|l| !l.mapping.su.is_empty() && l.mapping.utilization > 0.0));
    }

    #[test]
    fn searched_policy_keeps_sequential_parallel_bit_identity() {
        use bitwave_dataflow::mapping::MappingPolicy;
        let pipeline = Pipeline::new(ctx().with_mapping_policy(MappingPolicy::Searched));
        let net = mobilenet_v2();
        let sequential = pipeline.run_model(&net).unwrap();
        let parallel = pipeline.run_model_parallel(&net).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn searched_prepared_suffix_matches_full_runs() {
        use bitwave_dataflow::mapping::MappingPolicy;
        let context = ctx().with_mapping_policy(MappingPolicy::Searched);
        let net = resnet18();
        let weights = context.weights(&net);
        let pipeline = Pipeline::new(context).with_default_bitflip(&net);
        let prepared = pipeline.prepare_with_weights(&net, &weights).unwrap();
        let via_suffix = pipeline.simulate_prepared(&net, &prepared).unwrap();
        let full = pipeline.run_model_weights(&net, &weights).unwrap();
        assert_eq!(via_suffix, full);
    }

    #[test]
    fn search_model_weights_reports_per_layer_fronts() {
        let context = ctx();
        let net = resnet18();
        let weights = context.weights(&net);
        let pipeline = Pipeline::new(context);
        let search = pipeline.search_model_weights(&net, &weights).unwrap();
        assert_eq!(search.layers.len(), net.layers.len());
        assert_eq!(search.accelerator, "BitWave+DF+SM+BF");
        assert!(search.edp_gain() >= 1.0);
        for layer in &search.layers {
            assert!(!layer.search.front.is_empty());
            assert!(layer.search.candidates > 0);
            assert!(
                layer.search.winner.cost.edp <= layer.heuristic.cost.edp,
                "{}: the space seeds the heuristic choice",
                layer.layer
            );
        }
    }

    #[test]
    fn layer_report_serializes_to_json_and_back() {
        let net = resnet18();
        let report = Pipeline::new(ctx())
            .with_default_bitflip(&net)
            .run_model(&net)
            .unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: ModelReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }
}
