//! Shared experiment configuration.

use crate::error::{BitwaveError, Result};
use bitwave_accel::EnergyModel;
use bitwave_accel::LayerSparsityProfile;
use bitwave_core::group::GroupSize;
use bitwave_core::prelude::FlipStrategy;
use bitwave_core::stats::LayerSparsityStats;
use bitwave_dataflow::mapping::MappingPolicy;
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::weights::NetworkWeights;

/// Configuration shared by every experiment driver.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// RNG seed for the synthetic weights/activations.
    pub seed: u64,
    /// Maximum number of weight elements sampled per layer when computing
    /// sparsity statistics (the full tensors are only needed by the
    /// simulator); sampling truncates output channels, never the grouping
    /// axis, so the statistics are unbiased.
    pub sample_cap: usize,
    /// BCS group size used for the statistics (the hardware supports 8, 16
    /// and 32 per layer).
    pub group_size: GroupSize,
    /// Memory hierarchy shared by all modelled accelerators.
    pub memory: MemoryHierarchy,
    /// Unit-energy model.
    pub energy: EnergyModel,
    /// How the map stage picks each layer's spatial unrolling: the Fig. 9
    /// heuristic (default, the paper's reported configuration) or the
    /// `bitwave-dse` per-layer design-space search.
    pub mapping_policy: MappingPolicy,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            seed: 42,
            sample_cap: 60_000,
            group_size: GroupSize::G16,
            memory: MemoryHierarchy::bitwave_default(),
            energy: EnergyModel::finfet_16nm(),
            mapping_policy: MappingPolicy::Heuristic,
        }
    }
}

impl ExperimentContext {
    /// Overrides the per-layer sampling cap (builder style).
    pub fn with_sample_cap(mut self, cap: usize) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the BCS group size (builder style).
    pub fn with_group_size(mut self, group_size: GroupSize) -> Self {
        self.group_size = group_size;
        self
    }

    /// Overrides the mapping policy (builder style).  `Searched` routes the
    /// map stage through the memoized `bitwave-dse` design-space search.
    pub fn with_mapping_policy(mut self, policy: MappingPolicy) -> Self {
        self.mapping_policy = policy;
        self
    }

    /// Generates the (sampled) synthetic Int8 weights of a network.
    pub fn weights(&self, spec: &NetworkSpec) -> NetworkWeights {
        NetworkWeights::generate_sampled(spec, self.seed, self.sample_cap)
    }

    /// Looks up one layer's weights, converting absence into a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::MissingLayer`] when the weights lack the layer.
    pub fn layer_weights<'w>(
        &self,
        spec: &NetworkSpec,
        weights: &'w NetworkWeights,
        layer: &str,
    ) -> Result<&'w bitwave_tensor::QuantTensor> {
        Ok(self.layer_weight_handle(spec, weights, layer)?.tensor())
    }

    /// Looks up one layer's shared weight handle, converting absence into a
    /// typed error.  Cloning the returned handle shares the tensor with the
    /// weight set instead of copying it — the way experiment drivers build
    /// ad-hoc [`crate::pipeline::LayerJob`]s.
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::MissingLayer`] when the weights lack the layer.
    pub fn layer_weight_handle<'w>(
        &self,
        spec: &NetworkSpec,
        weights: &'w NetworkWeights,
        layer: &str,
    ) -> Result<&'w bitwave_tensor::WeightHandle> {
        weights
            .layer_handle(layer)
            .ok_or_else(|| BitwaveError::MissingLayer {
                network: spec.name.clone(),
                layer: layer.to_string(),
            })
    }

    /// Per-layer sparsity statistics of a weight set, aligned with
    /// `spec.layers`.
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::MissingLayer`] for absent weights and
    /// propagates grouping errors.
    pub fn layer_stats(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<Vec<LayerSparsityStats>> {
        spec.layers
            .iter()
            .map(|l| {
                let tensor = self.layer_weights(spec, weights, &l.name)?;
                Ok(LayerSparsityStats::analyze(tensor, self.group_size)?)
            })
            .collect()
    }

    /// Per-layer sparsity profiles for the accelerator models, aligned with
    /// `spec.layers`.
    ///
    /// # Errors
    ///
    /// Returns [`BitwaveError::MissingLayer`] for absent weights and
    /// propagates grouping errors.
    pub fn profiles(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<Vec<LayerSparsityProfile>> {
        spec.layers
            .iter()
            .map(|l| {
                let tensor = self.layer_weights(spec, weights, &l.name)?;
                Ok(LayerSparsityProfile::from_weights(
                    tensor,
                    l.expected_activation_sparsity(),
                    self.group_size,
                )?)
            })
            .collect()
    }

    /// The default one-shot Bit-Flip strategy the evaluation uses
    /// (Section III-D / Fig. 6): weight-heavy, perturbation-insensitive
    /// layers are flipped to 5 zero columns; for BERT the especially
    /// sensitive encoder layers 1–3 stay at 2 zero columns.
    pub fn default_bitflip_strategy(&self, spec: &NetworkSpec) -> FlipStrategy {
        let mut strategy = FlipStrategy::new();
        let heavy: Vec<String> = spec
            .weight_heavy_layers(0.75)
            .iter()
            .map(|l| l.name.clone())
            .collect();
        for layer in &spec.layers {
            if !heavy.contains(&layer.name) {
                continue;
            }
            let zero_columns = if layer.sensitivity > 0.7 { 2 } else { 5 };
            strategy.set(&layer.name, self.group_size, zero_columns);
        }
        strategy
    }

    /// Bit-flipped weights under the default strategy.
    ///
    /// # Errors
    ///
    /// Propagates grouping/flip errors from the Bit-Flip kernel.
    pub fn flipped_weights(
        &self,
        spec: &NetworkSpec,
        weights: &NetworkWeights,
    ) -> Result<NetworkWeights> {
        Ok(weights.apply_flip_strategy(&self.default_bitflip_strategy(spec))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::{bert_base, resnet18};

    #[test]
    fn builder_overrides() {
        let ctx = ExperimentContext::default()
            .with_sample_cap(100)
            .with_seed(7)
            .with_group_size(GroupSize::G8)
            .with_mapping_policy(MappingPolicy::Searched);
        assert_eq!(ctx.sample_cap, 100);
        assert_eq!(ctx.seed, 7);
        assert_eq!(ctx.group_size, GroupSize::G8);
        assert_eq!(ctx.mapping_policy, MappingPolicy::Searched);
        assert_eq!(
            ExperimentContext::default().mapping_policy,
            MappingPolicy::Heuristic,
            "the heuristic stays the default (goldens depend on it)"
        );
    }

    #[test]
    fn profiles_align_with_layers() {
        let ctx = ExperimentContext::default().with_sample_cap(2_000);
        let net = resnet18();
        let weights = ctx.weights(&net);
        let profiles = ctx.profiles(&net, &weights).unwrap();
        assert_eq!(profiles.len(), net.layers.len());
        let stats = ctx.layer_stats(&net, &weights).unwrap();
        assert_eq!(stats.len(), net.layers.len());
    }

    #[test]
    fn missing_layers_surface_as_typed_errors() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let mut foreign = bert_base();
        foreign.name = net.name.clone();
        let weights = ctx.weights(&foreign);
        let err = ctx.layer_stats(&net, &weights).unwrap_err();
        assert!(matches!(err, BitwaveError::MissingLayer { .. }));
        let err = ctx.profiles(&net, &weights).unwrap_err();
        assert!(matches!(err, BitwaveError::MissingLayer { .. }));
    }

    #[test]
    fn default_strategy_targets_heavy_layers_only() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = resnet18();
        let strategy = ctx.default_bitflip_strategy(&net);
        assert!(strategy.get("layer4.1.conv2", ctx.group_size) >= 4);
        assert_eq!(strategy.get("conv1", ctx.group_size), 0);
    }

    #[test]
    fn bert_sensitive_layers_get_gentler_targets() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = bert_base();
        let strategy = ctx.default_bitflip_strategy(&net);
        let sensitive = strategy.get("bert.encoder.layer.1.intermediate", ctx.group_size);
        let insensitive = strategy.get("bert.encoder.layer.8.intermediate", ctx.group_size);
        assert!(insensitive > sensitive || sensitive <= 2);
    }

    #[test]
    fn flipped_weights_change_only_targeted_layers() {
        let ctx = ExperimentContext::default().with_sample_cap(2_000);
        let net = resnet18();
        let weights = ctx.weights(&net);
        let flipped = ctx.flipped_weights(&net, &weights).unwrap();
        assert_eq!(
            weights.layer("conv1").unwrap().data(),
            flipped.layer("conv1").unwrap().data()
        );
        assert_ne!(
            weights.layer("layer4.1.conv2").unwrap().data(),
            flipped.layer("layer4.1.conv2").unwrap().data()
        );
    }
}
