//! Bit-Flip experiments: Fig. 6 layer sensitivity and CR-vs-quality Pareto
//! fronts, plus the Algorithm 1 greedy search.
//!
//! Whole-network compression accounting goes through the
//! [`crate::pipeline`] compress stage ([`Pipeline::network_compression`]).

use crate::context::ExperimentContext;
use crate::error::Result;
use crate::pipeline::Pipeline;
use bitwave_core::pareto::{pareto_front, ParetoPoint};
use bitwave_core::prelude::FlipStrategy;
use bitwave_core::search::{greedy_bitflip_search, SearchConfig, SearchOutcome};
use bitwave_dnn::models::NetworkSpec;
use bitwave_dnn::proxy::AccuracyProxy;
use bitwave_dnn::weights::NetworkWeights;
use serde::{Deserialize, Serialize};

/// One point of a Fig. 6(a–d) layer-sensitivity curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Network name.
    pub network: String,
    /// Layer whose weights were flipped (all other layers untouched).
    pub layer: String,
    /// Zero-column target applied to the layer.
    pub zero_columns: u32,
    /// Resulting model quality (accuracy %, PESQ or F1 %).
    pub quality: f64,
    /// Quality drop relative to the Int8 baseline.
    pub quality_drop: f64,
}

/// Fig. 6(a–d): flip one layer at a time to 0–7 zero columns and record the
/// quality of the proxy metric.  `layers` restricts the sweep (the paper
/// plots every layer; the benches use a representative subset to bound the
/// runtime).
///
/// # Errors
///
/// Propagates Bit-Flip errors from the proxy.
pub fn fig06_layer_sensitivity(
    ctx: &ExperimentContext,
    spec: &NetworkSpec,
    layers: &[String],
    max_zero_columns: u32,
) -> Result<Vec<SensitivityRow>> {
    let weights = ctx.weights(spec);
    let proxy = AccuracyProxy::new(spec, weights);
    let mut rows = Vec::new();
    for layer in layers {
        for z in 0..=max_zero_columns.min(7) {
            let mut strategy = FlipStrategy::new();
            strategy.set(layer, ctx.group_size, z);
            let quality = proxy.quality_of_strategy(&strategy)?;
            rows.push(SensitivityRow {
                network: spec.name.clone(),
                layer: layer.clone(),
                zero_columns: z,
                quality,
                quality_drop: proxy.baseline_quality() - quality,
            });
        }
    }
    Ok(rows)
}

/// One operating point of a Fig. 6(e–h) compression/quality trade-off curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffRow {
    /// Network name.
    pub network: String,
    /// Method ("Int8+PTQ", "Int8+SM", "Int8+SM+BitFlip").
    pub method: String,
    /// Configuration label (zero-column target or PTQ bit width).
    pub configuration: String,
    /// Weight compression ratio of the whole network (index included).
    pub compression_ratio: f64,
    /// Model quality under the proxy metric.
    pub quality: f64,
}

/// Fig. 6(e–h): compression ratio vs quality for Int8+PTQ, Int8+SM (lossless)
/// and Int8+SM+Bit-Flip on one network.
///
/// # Errors
///
/// Propagates pipeline and Bit-Flip errors.
pub fn fig06_tradeoff(ctx: &ExperimentContext, spec: &NetworkSpec) -> Result<Vec<TradeoffRow>> {
    let weights = ctx.weights(spec);
    let proxy = AccuracyProxy::new(spec, weights.clone());
    let heavy: Vec<String> = spec
        .weight_heavy_layers(0.75)
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let mut rows = Vec::new();

    // Int8+SM: lossless BCS compression of the unmodified weights.
    rows.push(TradeoffRow {
        network: spec.name.clone(),
        method: "Int8+SM".to_string(),
        configuration: format!("{} lossless", ctx.group_size),
        compression_ratio: network_bcs_compression(ctx, spec, &weights)?,
        quality: proxy.baseline_quality(),
    });

    // Int8+SM+Bit-Flip: flip the weight-heavy layers to 4..=7 zero columns.
    for z in 4..=7u32 {
        let mut strategy = FlipStrategy::new();
        for layer in &heavy {
            strategy.set(layer, ctx.group_size, z);
        }
        let flipped = weights.apply_flip_strategy(&strategy)?;
        rows.push(TradeoffRow {
            network: spec.name.clone(),
            method: "Int8+SM+BitFlip".to_string(),
            configuration: format!("z={z} on {} layers", heavy.len()),
            compression_ratio: network_bcs_compression(ctx, spec, &flipped)?,
            quality: proxy.quality_of(&flipped),
        });
    }

    // Int8+PTQ: reduce the bit width of the same heavy layers to match the
    // compression ratios reached by Bit-Flip.  The reported compression ratio
    // is network wide (untouched layers stay at 8 bits), exactly like the
    // Bit-Flip rows.
    let total_weights: f64 = weights.iter().map(|(_, t)| t.data().len() as f64).sum();
    let heavy_weights: f64 = weights
        .iter()
        .filter(|(name, _)| heavy.iter().any(|h| h == name))
        .map(|(_, t)| t.data().len() as f64)
        .sum();
    for bits in [6u8, 5, 4, 3, 2] {
        let ptq = weights.apply_ptq(bits, Some(&heavy));
        let compressed_bits =
            heavy_weights * f64::from(bits) + (total_weights - heavy_weights) * 8.0;
        rows.push(TradeoffRow {
            network: spec.name.clone(),
            method: "Int8+PTQ".to_string(),
            configuration: format!("{bits}-bit on heavy layers"),
            compression_ratio: total_weights * 8.0 / compressed_bits,
            quality: proxy.quality_of(&ptq),
        });
    }
    Ok(rows)
}

/// Whole-network BCS compression ratio (index included) at the context's
/// group size, computed through the pipeline's compress stage.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn network_bcs_compression(
    ctx: &ExperimentContext,
    spec: &NetworkSpec,
    weights: &NetworkWeights,
) -> Result<f64> {
    Pipeline::new(ctx.clone()).network_compression(spec, weights)
}

/// The Pareto front of a Fig. 6(e–h) trade-off sweep.
pub fn fig06_pareto(rows: &[TradeoffRow]) -> Vec<ParetoPoint> {
    let points: Vec<ParetoPoint> = rows
        .iter()
        .map(|r| {
            ParetoPoint::new(
                r.compression_ratio,
                r.quality,
                format!("{} {}", r.method, r.configuration),
            )
        })
        .collect();
    pareto_front(&points)
}

/// Runs Algorithm 1 (greedy layer-wise Bit-Flip search) on a network with the
/// proxy evaluator, restricted to the listed layers (the paper restricts the
/// search to the flip-insensitive layers identified in the sensitivity
/// analysis).
///
/// # Errors
///
/// Propagates Bit-Flip errors from the proxy evaluator.
pub fn run_greedy_search(
    ctx: &ExperimentContext,
    spec: &NetworkSpec,
    layers: &[String],
    min_quality: f64,
    max_iterations: usize,
) -> Result<SearchOutcome> {
    let weights = ctx.weights(spec);
    let proxy = AccuracyProxy::new(spec, weights);
    let config = SearchConfig {
        min_accuracy: min_quality,
        group_sizes: vec![ctx.group_size],
        max_zero_columns: 7,
        max_iterations,
    };
    Ok(greedy_bitflip_search(
        layers,
        FlipStrategy::new(),
        &config,
        |strategy| proxy.quality_of_strategy(strategy),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::{cnn_lstm, resnet18};

    fn ctx() -> ExperimentContext {
        ExperimentContext::default().with_sample_cap(3_000)
    }

    #[test]
    fn sensitivity_is_monotone_in_zero_columns() {
        let ctx = ctx();
        let net = resnet18();
        let rows = fig06_layer_sensitivity(
            &ctx,
            &net,
            &["conv1".to_string(), "layer4.1.conv2".to_string()],
            7,
        )
        .unwrap();
        assert_eq!(rows.len(), 2 * 8);
        for window in rows.windows(2) {
            if window[0].layer == window[1].layer {
                assert!(window[1].quality <= window[0].quality + 1e-9);
            }
        }
        // The early layer degrades faster per flipped column at high targets.
        let conv1_drop = rows
            .iter()
            .find(|r| r.layer == "conv1" && r.zero_columns == 7)
            .unwrap()
            .quality_drop;
        assert!(conv1_drop > 0.0);
    }

    #[test]
    fn tradeoff_bitflip_dominates_ptq() {
        let ctx = ctx();
        let net = resnet18();
        let rows = fig06_tradeoff(&ctx, &net).unwrap();
        // For every PTQ point there is a Bit-Flip point with at least the
        // same compression and better quality (the Fig. 6e finding).
        let bitflip: Vec<&TradeoffRow> = rows
            .iter()
            .filter(|r| r.method == "Int8+SM+BitFlip")
            .collect();
        let ptq: Vec<&TradeoffRow> = rows.iter().filter(|r| r.method == "Int8+PTQ").collect();
        assert!(!bitflip.is_empty() && !ptq.is_empty());
        let ptq4 = ptq
            .iter()
            .find(|r| r.configuration.starts_with("4-bit"))
            .unwrap();
        let better = bitflip.iter().any(|b| {
            b.compression_ratio >= ptq4.compression_ratio * 0.8 && b.quality > ptq4.quality
        });
        assert!(better, "no Bit-Flip point dominates the 4-bit PTQ point");
        // The lossless SM point keeps baseline quality.
        let sm = rows.iter().find(|r| r.method == "Int8+SM").unwrap();
        assert!((sm.quality - net.baseline_quality).abs() < 1e-9);
        assert!(sm.compression_ratio > 1.0);
    }

    #[test]
    fn pareto_front_is_nonempty_and_sorted() {
        let ctx = ctx();
        let net = cnn_lstm();
        let rows = fig06_tradeoff(&ctx, &net).unwrap();
        let front = fig06_pareto(&rows);
        assert!(!front.is_empty());
        assert!(front
            .windows(2)
            .all(|w| w[0].compression_ratio <= w[1].compression_ratio));
    }

    #[test]
    fn greedy_search_respects_quality_floor() {
        let ctx = ctx();
        let net = resnet18();
        let layers: Vec<String> = net
            .weight_heavy_layers(0.5)
            .iter()
            .map(|l| l.name.clone())
            .collect();
        let floor = net.baseline_quality - 0.5;
        let outcome = run_greedy_search(&ctx, &net, &layers, floor, 12).unwrap();
        assert!(outcome.final_accuracy >= floor);
        assert!(outcome.evaluations > 0);
    }
}
