//! One experiment driver per table and figure of the paper's evaluation.
//!
//! Every driver takes an [`crate::context::ExperimentContext`] and returns a
//! vector of serialisable rows; the benchmark harness prints them as the
//! tables/series the paper reports, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

pub mod bitflip;
pub mod evaluation;
pub mod hardware;
pub mod sparsity;

/// Renders a slice of serialisable rows as a pretty-printed JSON array —
/// the common output format of the benchmark harness.
pub fn rows_to_json<T: serde::Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).expect("experiment rows serialise")
}
