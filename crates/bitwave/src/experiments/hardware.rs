//! Hardware-oriented experiments: Fig. 9 (PE utilisation), Table I (SU
//! bandwidths), Fig. 12 (workload summary), Table III, Table IV and Fig. 18.

use crate::context::ExperimentContext;
use crate::error::Result;
use crate::pipeline::{MappingSummary, Pipeline};
use bitwave_accel::prelude::{
    bitwave_area_power_breakdown, pe_type_comparison, sota_comparison_table, AreaPowerRow,
    PeTypeRow, SotaRow,
};
use bitwave_dataflow::su::{baseline_su, bitwave_su};
use bitwave_dataflow::utilization::{utilization_matrix, UtilizationRow};
use bitwave_dnn::models::{mobilenet_v2, resnet18, WorkloadSummary};
use serde::{Deserialize, Serialize};

/// Fig. 9: PE utilisation of fixed SUs (on a 4096-lane bit-serial array and a
/// 512-PE bit-parallel array) across the four workload cases, plus the
/// best utilisation BitWave's dynamic set achieves.
pub fn fig09_pe_utilization(_ctx: &ExperimentContext) -> Vec<UtilizationRow> {
    let resnet = resnet18();
    let mobile = mobilenet_v2();
    let early = resnet.layer("conv1").expect("conv1 exists");
    let late = resnet.layer("layer4.1.conv2").expect("late conv exists");
    let dwcv = mobile
        .layers
        .iter()
        .find(|l| l.kind.is_depthwise())
        .expect("depthwise layer exists");
    let pwcv = mobile
        .layers
        .iter()
        .find(|l| l.name.ends_with("expand"))
        .expect("pointwise layer exists");
    let cases = [
        ("early layer (ResNet18 conv1)", early),
        ("late layer (ResNet18 last conv)", late),
        ("Dwcv (MobileNetV2)", dwcv),
        ("Pwcv (MobileNetV2)", pwcv),
    ];
    let sus = [
        baseline_su::XY_4096,
        baseline_su::CK_4096,
        baseline_su::XFX_4096,
        baseline_su::XY_512,
        baseline_su::CK_512,
        baseline_su::XFX_512,
        bitwave_su::SU1,
        bitwave_su::SU3,
        bitwave_su::SU7,
    ];
    utilization_matrix(&cases, &sus)
}

/// One row of the Table I bandwidth check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table01Row {
    /// SU name.
    pub su: String,
    /// `[Cu, OXu, Ku, Gu]` unrolling factors.
    pub unrolling: [usize; 4],
    /// Weight bandwidth in bits per cycle.
    pub weight_bw_bits: usize,
    /// Activation bandwidth in bits per cycle.
    pub activation_bw_bits: usize,
}

/// Table I: BitWave's seven SUs and their bandwidth requirements.
pub fn table01_su_bandwidth() -> Vec<Table01Row> {
    bitwave_su::ALL
        .iter()
        .map(|su| Table01Row {
            su: su.name.to_string(),
            unrolling: [su.c, su.ox, su.k, su.g],
            weight_bw_bits: su.weight_bits_per_cycle_bit_serial(),
            activation_bw_bits: su.activation_bits_per_cycle(),
        })
        .collect()
}

/// One row of the pipeline-derived dynamic mapping table: which SU BitWave's
/// per-layer dataflow selection (Section IV-C) actually picks for every layer
/// of a network — the mechanism behind the Fig. 9 "BitWave best" bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicMappingRow {
    /// Network name.
    pub network: String,
    /// Layer name.
    pub layer: String,
    /// The chosen spatial unrolling.
    pub su: String,
    /// PE-array utilisation achieved by the choice.
    pub utilization: f64,
    /// Effective MAC lanes per cycle.
    pub effective_macs_per_cycle: f64,
}

/// Fig. 9 companion: runs the pipeline's map stage over every layer of a
/// network and reports the per-layer SU choice of BitWave's dynamic set.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig09_dynamic_mapping(
    ctx: &ExperimentContext,
    spec: &bitwave_dnn::models::NetworkSpec,
) -> Result<Vec<DynamicMappingRow>> {
    let mappings: Vec<MappingSummary> = Pipeline::new(ctx.clone()).map_model(spec)?;
    Ok(spec
        .layers
        .iter()
        .zip(mappings)
        .map(|(layer, m)| DynamicMappingRow {
            network: spec.name.clone(),
            layer: layer.name.clone(),
            su: m.su,
            utilization: m.utilization,
            effective_macs_per_cycle: m.effective_macs_per_cycle,
        })
        .collect())
}

/// Fig. 12 (left): the workload summary table.
pub fn fig12_workload_summary() -> Vec<WorkloadSummary> {
    bitwave_dnn::models::all_networks()
        .iter()
        .map(|n| n.summary())
        .collect()
}

/// Table III: the state-of-the-art comparison rows.
pub fn table03_sota_comparison() -> Vec<SotaRow> {
    sota_comparison_table()
}

/// Table IV: the PE-type area/power comparison.
pub fn table04_pe_cost() -> Vec<PeTypeRow> {
    pe_type_comparison()
}

/// Fig. 18: BitWave's module-level area and power breakdown.
pub fn fig18_area_power_breakdown() -> Vec<AreaPowerRow> {
    bitwave_area_power_breakdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_has_all_cases_and_dwcv_collapses() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let rows = fig09_pe_utilization(&ctx);
        assert_eq!(rows.len(), 4 * 9);
        // No fixed 4096-lane SU exceeds 80% on every case (the Fig. 9 claim).
        for su in ["XY-4096", "CK-4096", "XFx-4096"] {
            let min = rows
                .iter()
                .filter(|r| r.su == su)
                .map(|r| r.utilization)
                .fold(f64::INFINITY, f64::min);
            assert!(min < 0.8, "{su} stayed above 80% everywhere");
        }
        // The depthwise case collapses for generic SUs but not for SU7.
        let dw_su1 = rows
            .iter()
            .find(|r| r.case.starts_with("Dwcv") && r.su == "SU1")
            .unwrap();
        let dw_su7 = rows
            .iter()
            .find(|r| r.case.starts_with("Dwcv") && r.su == "SU7")
            .unwrap();
        assert!(dw_su7.utilization > 3.0 * dw_su1.utilization);
    }

    #[test]
    fn table01_matches_paper_values() {
        let rows = table01_su_bandwidth();
        assert_eq!(rows.len(), 7);
        let su1 = &rows[0];
        assert_eq!(su1.weight_bw_bits, 256);
        assert_eq!(su1.activation_bw_bits, 1024);
        let su4 = &rows[3];
        assert_eq!(su4.weight_bw_bits, 1024);
        assert_eq!(su4.activation_bw_bits, 64);
        let su7 = &rows[6];
        assert_eq!(su7.weight_bw_bits, 64);
        assert_eq!(su7.activation_bw_bits, 1024);
    }

    #[test]
    fn fig12_summary_has_four_networks() {
        let rows = fig12_workload_summary();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.name == "ResNet18"));
        assert!(rows
            .iter()
            .all(|r| r.gflops > 0.0 && r.params_millions > 0.0));
    }

    #[test]
    fn static_tables_are_nonempty() {
        assert_eq!(table03_sota_comparison().len(), 6);
        assert_eq!(table04_pe_cost().len(), 3);
        assert_eq!(fig18_area_power_breakdown().len(), 6);
    }

    #[test]
    fn dynamic_mapping_covers_every_layer_and_uses_su7_for_depthwise() {
        let ctx = ExperimentContext::default().with_sample_cap(1_000);
        let net = mobilenet_v2();
        let rows = fig09_dynamic_mapping(&ctx, &net).unwrap();
        assert_eq!(rows.len(), net.layers.len());
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.utilization));
        }
        // Depthwise layers must never map worse than the dedicated SU7
        // (Table I), though a generic SU may tie it on some shapes.
        let dw_index = net
            .layers
            .iter()
            .position(|l| l.kind.is_depthwise())
            .unwrap();
        let dw_layer = &net.layers[dw_index];
        let su7 = bitwave_dataflow::su::bitwave_su::SU7;
        let su7_rate = su7.parallelism() as f64 * su7.utilization_for(dw_layer);
        assert!(rows[dw_index].effective_macs_per_cycle >= su7_rate - 1e-9);
    }
}
