//! Sparsity-analysis experiments: Fig. 1, Fig. 4 and Fig. 5.
//!
//! All per-layer analysis goes through the [`crate::pipeline`] compress
//! stage; this module only aggregates stage outputs into the paper's figures.

use crate::context::ExperimentContext;
use crate::error::Result;
use crate::pipeline::{CompressStage, Pipeline, PipelineStage};
use bitwave_core::compress::{CompressionReport, CsrCodec, WeightCodec, ZreCodec};
use bitwave_core::group::GroupSize;
use bitwave_core::stats::SparsitySummary;
use bitwave_dnn::models::{all_networks, resnet18};
use serde::{Deserialize, Serialize};

/// One network bar of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig01Row {
    /// Network name.
    pub network: String,
    /// Weight value sparsity.
    pub value_sparsity: f64,
    /// Weight bit sparsity in two's complement.
    pub bit_sparsity_twos_complement: f64,
    /// Weight bit sparsity in sign-magnitude.
    pub bit_sparsity_sign_magnitude: f64,
    /// `SR` ratio (two's complement bit sparsity / value sparsity).
    pub speedup_ratio_twos_complement: f64,
    /// `SR` ratio for sign-magnitude.
    pub speedup_ratio_sign_magnitude: f64,
}

/// Fig. 1: weight value sparsity vs bit sparsity for the four Int8 networks.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig01_sparsity_survey(ctx: &ExperimentContext) -> Result<Vec<Fig01Row>> {
    let pipeline = Pipeline::new(ctx.clone());
    all_networks()
        .iter()
        .map(|net| {
            let compressed = pipeline.compress_model(net)?;
            let stats: Vec<_> = compressed.iter().map(|c| c.sparsity).collect();
            let summary = SparsitySummary::aggregate(stats.iter());
            Ok(Fig01Row {
                network: net.name.clone(),
                value_sparsity: summary.value_sparsity,
                bit_sparsity_twos_complement: summary.bit_sparsity_twos_complement,
                bit_sparsity_sign_magnitude: summary.bit_sparsity_sign_magnitude,
                speedup_ratio_twos_complement: summary.speedup_ratio_twos_complement(),
                speedup_ratio_sign_magnitude: summary.speedup_ratio_sign_magnitude(),
            })
        })
        .collect()
}

/// The Fig. 4 representation study on one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04Result {
    /// Layer analysed (the paper uses ResNet18 conv2 at G = 4).
    pub layer: String,
    /// Group size.
    pub group_size: usize,
    /// Value sparsity of the layer.
    pub value_sparsity: f64,
    /// Bit-column sparsity in two's complement.
    pub column_sparsity_twos_complement: f64,
    /// Bit-column sparsity in sign-magnitude.
    pub column_sparsity_sign_magnitude: f64,
    /// Improvement factor of switching the representation.
    pub sign_magnitude_improvement: f64,
}

/// Fig. 4: bit-column sparsity of an early ResNet18 conv layer under two's
/// complement vs sign-magnitude at `G = 4`.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig04_bcs_representation(ctx: &ExperimentContext) -> Result<Fig04Result> {
    let net = resnet18();
    // "conv2" of the paper corresponds to the first 3x3 layer of stage 1.
    let layer_name = "layer1.0.conv1";
    let weights = ctx.weights(&net);
    let layer = net
        .layer(layer_name)
        .ok_or_else(|| crate::error::BitwaveError::MissingLayer {
            network: net.name.clone(),
            layer: layer_name.to_string(),
        })?;
    let job = crate::pipeline::LayerJob {
        network: net.name.clone(),
        layer: layer.clone(),
        // Shares the generated tensor with the weight set (no deep copy).
        weights: ctx.layer_weight_handle(&net, &weights, layer_name)?.clone(),
        group_size: GroupSize::Custom(4),
        zero_column_target: 0,
    };
    let compressed = CompressStage::new(bitwave_tensor::bits::Encoding::SignMagnitude).run(job)?;
    let stats = compressed.sparsity;
    Ok(Fig04Result {
        layer: layer_name.to_string(),
        group_size: 4,
        value_sparsity: stats.value_sparsity,
        column_sparsity_twos_complement: stats.column_sparsity_twos_complement,
        column_sparsity_sign_magnitude: stats.column_sparsity_sign_magnitude,
        sign_magnitude_improvement: if stats.column_sparsity_twos_complement > 0.0 {
            stats.column_sparsity_sign_magnitude / stats.column_sparsity_twos_complement
        } else {
            f64::INFINITY
        },
    })
}

/// One bar of Fig. 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig05Row {
    /// Codec name ("BCS", "ZRE", "CSR").
    pub codec: String,
    /// Group size for BCS bars (None for the value-sparsity codecs).
    pub group_size: Option<usize>,
    /// Compression ratio ignoring index overhead.
    pub cr_ideal: f64,
    /// Compression ratio including index overhead.
    pub cr_with_index: f64,
}

/// Fig. 5: compression ratio of BCS (G = 1..64) vs ZRE and CSR on the last
/// four conv layers of ResNet18.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig05_compression_ratio(ctx: &ExperimentContext) -> Result<Vec<Fig05Row>> {
    let net = resnet18();
    let weights = ctx.weights(&net);
    // The last four conv layers: layer4.* (≥50% of the network's weights).
    let target_layers = [
        "layer4.0.conv1",
        "layer4.0.conv2",
        "layer4.1.conv1",
        "layer4.1.conv2",
    ];
    let mut concatenated: Vec<i8> = Vec::new();
    let mut target_jobs = Vec::new();
    for name in &target_layers {
        let handle = ctx.layer_weight_handle(&net, &weights, name)?;
        concatenated.extend_from_slice(handle.data());
        let layer = net
            .layer(name)
            .ok_or_else(|| crate::error::BitwaveError::MissingLayer {
                network: net.name.clone(),
                layer: (*name).to_string(),
            })?;
        target_jobs.push(crate::pipeline::LayerJob {
            network: net.name.clone(),
            layer: layer.clone(),
            // Shares the generated tensor with the weight set (no deep copy).
            weights: handle.clone(),
            group_size: GroupSize::G16, // overwritten per sweep point below
            zero_column_target: 0,
        });
    }

    let mut rows = Vec::new();
    for g in [1usize, 2, 4, 8, 16, 32, 64] {
        // Group along the input-channel axis per layer through the pipeline's
        // compress stage, then merge the accounting, mirroring how the
        // hardware compresses each layer.
        let stage = CompressStage::new(bitwave_tensor::bits::Encoding::SignMagnitude);
        let mut payload = 0usize;
        let mut index = 0usize;
        let mut original = 0usize;
        for job in &target_jobs {
            let mut job = job.clone();
            job.group_size = GroupSize::from_len(g);
            let compressed = stage.run(job)?;
            payload += compressed.compression.payload_bits;
            index += compressed.compression.index_bits;
            original += compressed.compression.original_bits;
        }
        rows.push(Fig05Row {
            codec: "BCS".to_string(),
            group_size: Some(g),
            cr_ideal: original as f64 / payload.max(1) as f64,
            cr_with_index: original as f64 / (payload + index).max(1) as f64,
        });
    }

    for report in [
        CompressionReport::from_compressed(&ZreCodec::default().compress(&concatenated), None),
        CompressionReport::from_compressed(&CsrCodec::new(512).compress(&concatenated), None),
    ] {
        rows.push(Fig05Row {
            codec: report.codec,
            group_size: None,
            cr_ideal: report.cr_ideal,
            cr_with_index: report.cr_with_index,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::default().with_sample_cap(4_000)
    }

    #[test]
    fn fig01_orderings_match_paper() {
        let rows = fig01_sparsity_survey(&ctx()).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // Bit sparsity always exceeds value sparsity (the Fig. 1 point),
            // and sign-magnitude always exceeds two's complement.
            assert!(row.bit_sparsity_twos_complement > row.value_sparsity);
            assert!(row.bit_sparsity_sign_magnitude >= row.bit_sparsity_twos_complement);
            assert!(row.speedup_ratio_twos_complement > 1.0);
        }
    }

    #[test]
    fn fig04_sign_magnitude_multiplies_column_sparsity() {
        let result = fig04_bcs_representation(&ctx()).unwrap();
        assert!(result.column_sparsity_sign_magnitude > result.column_sparsity_twos_complement);
        assert!(
            result.sign_magnitude_improvement > 1.5,
            "improvement {:.2}",
            result.sign_magnitude_improvement
        );
        assert_eq!(result.group_size, 4);
    }

    #[test]
    fn fig05_cr_decreases_with_group_size_and_beats_value_codecs() {
        let rows = fig05_compression_ratio(&ctx()).unwrap();
        let bcs: Vec<&Fig05Row> = rows.iter().filter(|r| r.codec == "BCS").collect();
        assert_eq!(bcs.len(), 7);
        // Ideal CR decreases (or stays) as the group grows.
        for pair in bcs.windows(2) {
            assert!(pair[0].cr_ideal >= pair[1].cr_ideal - 1e-9);
        }
        // G=1's real CR is hurt by the index overhead relative to G=8.
        let g1 = bcs.iter().find(|r| r.group_size == Some(1)).unwrap();
        let g8 = bcs.iter().find(|r| r.group_size == Some(8)).unwrap();
        assert!(g1.cr_ideal > g8.cr_ideal);
        assert!(g1.cr_with_index < g1.cr_ideal / 1.5);
        // BCS at the hardware group sizes beats ZRE and CSR on these layers.
        let zre = rows.iter().find(|r| r.codec == "ZRE").unwrap();
        let csr = rows.iter().find(|r| r.codec == "CSR").unwrap();
        for g in [8usize, 16, 32] {
            let bcs_g = bcs.iter().find(|r| r.group_size == Some(g)).unwrap();
            assert!(bcs_g.cr_with_index > zre.cr_with_index);
            assert!(bcs_g.cr_with_index > csr.cr_with_index);
        }
    }
}
