//! End-to-end evaluation experiments: Fig. 13 (speedup breakdown), Fig. 14
//! (speedup vs SotA), Fig. 15 (energy), Fig. 16 (energy breakdown), Fig. 17
//! (energy efficiency) and the model-vs-simulator validation of Section V-B.
//!
//! Every accelerator evaluation runs through the [`crate::pipeline`]: one
//! [`Pipeline`] per accelerator configuration, sharing one generated weight
//! set per network.

use crate::context::ExperimentContext;
use crate::error::Result;
use crate::pipeline::{ModelReport, Pipeline};
use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave_dnn::models::{all_networks, NetworkSpec};
use bitwave_sim::engine::EngineConfig;
use bitwave_sim::validate::{validate_layer, ValidationReport};
use bitwave_tensor::prelude::*;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One bar of Fig. 13: a BitWave optimisation step on one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Network name.
    pub network: String,
    /// Optimisation step ("Dense", "DF", "DF+SM", "DF+SM+BF").
    pub step: String,
    /// Speedup relative to the Dense configuration (higher is better).
    pub speedup_vs_dense: f64,
}

/// One bar of the Fig. 14/15/17 SotA comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SotaComparisonRow {
    /// Network name.
    pub network: String,
    /// Accelerator label.
    pub accelerator: String,
    /// Speedup normalised to SCNN (Fig. 14, higher is better).
    pub speedup_vs_scnn: f64,
    /// Energy normalised to BitWave+DF+SM+BF (Fig. 15, lower is better).
    pub energy_vs_bitwave: f64,
    /// Energy efficiency normalised to SCNN (Fig. 17, higher is better).
    pub efficiency_vs_scnn: f64,
    /// Fraction of this accelerator's energy spent in DRAM (Fig. 16 context).
    pub dram_energy_fraction: f64,
}

/// One row of the Fig. 16 energy breakdown for BitWave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig16Row {
    /// Network name.
    pub network: String,
    /// Compute (PE array) energy share.
    pub compute_fraction: f64,
    /// On-chip SRAM energy share.
    pub sram_fraction: f64,
    /// Register energy share.
    pub register_fraction: f64,
    /// Off-chip DRAM energy share.
    pub dram_fraction: f64,
    /// Absolute total energy in millijoules.
    pub total_mj: f64,
}

/// Evaluates one network on every accelerator of the comparison plus the
/// BitWave variants, returning `(label, report)` pairs.  One pipeline per
/// configuration; the BitWave+BF configuration enables the Bit-Flip stage.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn evaluate_all_accelerators(
    ctx: &ExperimentContext,
    spec: &NetworkSpec,
) -> Result<Vec<(String, ModelReport)>> {
    let weights = ctx.weights(spec);
    // The compress/bit-flip prefix is accelerator independent: prepare the
    // baseline and the flipped variant once, then run only the map+simulate
    // suffix per accelerator.
    let baseline = Pipeline::new(ctx.clone()).prepare_with_weights(spec, &weights)?;
    let flipped = Pipeline::new(ctx.clone())
        .with_default_bitflip(spec)
        .prepare_with_weights(spec, &weights)?;
    let configs: Vec<(AcceleratorSpec, bool)> = vec![
        (AcceleratorSpec::dense(), false),
        (
            AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_only()),
            false,
        ),
        (
            AcceleratorSpec::bitwave(BitwaveOptimizations::dataflow_sm()),
            false,
        ),
        (AcceleratorSpec::bitwave(BitwaveOptimizations::all()), true),
        (AcceleratorSpec::scnn(), false),
        (AcceleratorSpec::stripes(), false),
        (AcceleratorSpec::pragmatic(), false),
        (AcceleratorSpec::bitlet(), false),
        (AcceleratorSpec::huaa(), false),
    ];
    configs
        .par_iter()
        .map(|(accel, use_bitflip)| {
            let pipeline = Pipeline::new(ctx.clone()).with_accelerator(accel.clone());
            let prepared = if *use_bitflip { &flipped } else { &baseline };
            let report = pipeline.simulate_prepared(spec, prepared)?;
            Ok((accel.label.clone(), report))
        })
        .collect()
}

/// Fig. 13: the speedup breakdown Dense → +DF → +SM → +BF for every network.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig13_speedup_breakdown(ctx: &ExperimentContext) -> Result<Vec<Fig13Row>> {
    let per_network: Vec<Vec<Fig13Row>> = all_networks()
        .par_iter()
        .map(|spec| -> Result<Vec<Fig13Row>> {
            let results = evaluate_all_accelerators(ctx, spec)?;
            let get = |label: &str| {
                results
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, r)| r)
                    .expect("configuration evaluated")
            };
            let dense = get("Dense");
            Ok([
                ("Dense", dense),
                ("DF", get("BitWave+DF")),
                ("DF+SM", get("BitWave+DF+SM")),
                ("DF+SM+BF", get("BitWave+DF+SM+BF")),
            ]
            .map(|(step, result)| Fig13Row {
                network: spec.name.clone(),
                step: step.to_string(),
                speedup_vs_dense: result.speedup_over(dense),
            })
            .to_vec())
        })
        .collect::<Result<_>>()?;
    Ok(per_network.into_iter().flatten().collect())
}

/// Figs. 14, 15 and 17: speedup, energy and efficiency of every accelerator,
/// normalised exactly as the paper normalises them.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig14_15_17_sota_comparison(ctx: &ExperimentContext) -> Result<Vec<SotaComparisonRow>> {
    let per_network: Vec<Vec<SotaComparisonRow>> = all_networks()
        .par_iter()
        .map(|spec| -> Result<Vec<SotaComparisonRow>> {
            let results = evaluate_all_accelerators(ctx, spec)?;
            let scnn = results
                .iter()
                .find(|(l, _)| l == "SCNN")
                .map(|(_, r)| r.clone())
                .expect("SCNN evaluated");
            let bitwave = results
                .iter()
                .find(|(l, _)| l == "BitWave+DF+SM+BF")
                .map(|(_, r)| r.clone())
                .expect("BitWave evaluated");
            Ok(results
                .iter()
                .filter(|(label, _)| {
                    // The SotA figures plot the five baselines plus BitWave.
                    label == "SCNN"
                        || label == "Stripes"
                        || label == "Pragmatic"
                        || label == "Bitlet"
                        || label == "HUAA"
                        || label == "BitWave+DF+SM+BF"
                })
                .map(|(label, result)| SotaComparisonRow {
                    network: spec.name.clone(),
                    accelerator: label.clone(),
                    speedup_vs_scnn: result.speedup_over(&scnn),
                    energy_vs_bitwave: result.relative_energy(&bitwave),
                    efficiency_vs_scnn: result.efficiency_over(&scnn),
                    dram_energy_fraction: result.energy.dram_fraction(),
                })
                .collect::<Vec<_>>())
        })
        .collect::<Result<_>>()?;
    Ok(per_network.into_iter().flatten().collect())
}

/// Fig. 16: BitWave's energy breakdown including DRAM for every network.
///
/// # Errors
///
/// Propagates pipeline planning/stage errors.
pub fn fig16_energy_breakdown(ctx: &ExperimentContext) -> Result<Vec<Fig16Row>> {
    all_networks()
        .par_iter()
        .map(|spec| {
            let report = Pipeline::new(ctx.clone())
                .with_default_bitflip(spec)
                .run_model(spec)?;
            let total = report.energy.total_pj();
            Ok(Fig16Row {
                network: spec.name.clone(),
                compute_fraction: report.energy.compute_pj / total,
                sram_fraction: report.energy.sram_pj / total,
                register_fraction: report.energy.register_pj / total,
                dram_fraction: report.energy.dram_pj / total,
                total_mj: report.energy.total_mj(),
            })
        })
        .collect()
}

/// Section V-B validation: the analytical model against the cycle-level
/// simulator on a representative matmul workload.
///
/// # Errors
///
/// Propagates quantisation and simulator errors.
pub fn validation_model_vs_simulator(ctx: &ExperimentContext) -> Result<ValidationReport> {
    let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.02 }, ctx.seed);
    let weights = quantize_per_tensor(&gen.generate(Shape::d2(64, 256)), 8)?;
    let acts = ActivationGenerator::new(
        bitwave_tensor::synth::ActivationKind::Relu { std: 1.0 },
        ctx.seed ^ 1,
    )
    .generate(Shape::d2(32, 256));
    let acts = quantize_per_tensor(&acts, 8)?;
    Ok(validate_layer(&acts, &weights, EngineConfig::su1())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_dnn::models::{bert_base, mobilenet_v2};

    fn ctx() -> ExperimentContext {
        ExperimentContext::default().with_sample_cap(2_500)
    }

    #[test]
    fn fig13_breakdown_is_monotonic_per_network() {
        let rows = fig13_speedup_breakdown(&ctx()).unwrap();
        assert_eq!(rows.len(), 4 * 4);
        for net in ["ResNet18", "MobileNetV2", "CNN-LSTM", "Bert-Base"] {
            let series: Vec<&Fig13Row> = rows.iter().filter(|r| r.network == net).collect();
            assert_eq!(series.len(), 4);
            assert!((series[0].speedup_vs_dense - 1.0).abs() < 1e-9);
            for pair in series.windows(2) {
                assert!(
                    pair[1].speedup_vs_dense >= pair[0].speedup_vs_dense - 1e-9,
                    "{net}: {} -> {} regressed",
                    pair[0].step,
                    pair[1].step
                );
            }
            // The full stack is a real improvement.
            assert!(
                series[3].speedup_vs_dense > 1.1,
                "{net} total speedup too small"
            );
        }
    }

    #[test]
    fn mobilenet_gains_most_from_dynamic_dataflow() {
        let rows = fig13_speedup_breakdown(&ctx()).unwrap();
        let df_gain = |net: &str| {
            rows.iter()
                .find(|r| r.network == net && r.step == "DF")
                .unwrap()
                .speedup_vs_dense
        };
        assert!(df_gain("MobileNetV2") > df_gain("Bert-Base"));
        assert!(df_gain("MobileNetV2") > df_gain("CNN-LSTM"));
    }

    #[test]
    fn fig14_bitwave_wins_and_scnn_is_the_reference() {
        let rows = fig14_15_17_sota_comparison(&ctx()).unwrap();
        for net in ["ResNet18", "MobileNetV2", "CNN-LSTM", "Bert-Base"] {
            let series: Vec<&SotaComparisonRow> =
                rows.iter().filter(|r| r.network == net).collect();
            assert_eq!(series.len(), 6);
            let scnn = series.iter().find(|r| r.accelerator == "SCNN").unwrap();
            assert!((scnn.speedup_vs_scnn - 1.0).abs() < 1e-9);
            assert!((scnn.efficiency_vs_scnn - 1.0).abs() < 1e-9);
            let bitwave = series
                .iter()
                .find(|r| r.accelerator == "BitWave+DF+SM+BF")
                .unwrap();
            for row in &series {
                assert!(
                    bitwave.speedup_vs_scnn >= row.speedup_vs_scnn - 1e-9,
                    "{net}: BitWave loses speedup to {}",
                    row.accelerator
                );
                assert!(
                    bitwave.efficiency_vs_scnn >= row.efficiency_vs_scnn - 1e-9,
                    "{net}: BitWave loses efficiency to {}",
                    row.accelerator
                );
                assert!(
                    row.energy_vs_bitwave >= 1.0 - 1e-9,
                    "{net}: {} uses less energy than BitWave",
                    row.accelerator
                );
            }
        }
    }

    #[test]
    fn weight_heavy_networks_are_dram_dominated() {
        let rows = fig16_energy_breakdown(&ctx()).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            let sum = row.compute_fraction
                + row.sram_fraction
                + row.register_fraction
                + row.dram_fraction;
            assert!((sum - 1.0).abs() < 1e-9);
        }
        let bert = rows.iter().find(|r| r.network == "Bert-Base").unwrap();
        assert!(
            bert.dram_fraction > 0.5,
            "BERT should be DRAM dominated, got {:.2}",
            bert.dram_fraction
        );
    }

    #[test]
    fn validation_stays_within_paper_bound() {
        let report = validation_model_vs_simulator(&ctx()).unwrap();
        assert!(
            report.within_paper_bound(),
            "deviation {:.3} exceeds 6%",
            report.deviation
        );
    }

    #[test]
    fn evaluate_all_returns_every_configuration() {
        let ctx = ctx();
        let results = evaluate_all_accelerators(&ctx, &mobilenet_v2()).unwrap();
        assert_eq!(results.len(), 9);
        let results = evaluate_all_accelerators(&ctx, &bert_base()).unwrap();
        assert!(results.iter().any(|(l, _)| l == "Bitlet"));
    }
}
