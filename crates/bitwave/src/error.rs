//! The unified error type of the facade crate.
//!
//! Every stage of the [`crate::pipeline`] and every experiment driver
//! returns [`BitwaveError`]; substrate errors convert into it via `From`, so
//! `?` works across the tensor → core → sim → pipeline boundaries.  Written
//! by hand rather than with `thiserror` because the build environment is
//! offline; the shape matches what `#[derive(Error)]` would generate.

use bitwave_core::error::CoreError;
use bitwave_dataflow::mapping::MappingError;
use bitwave_dse::DseError;
use bitwave_sim::error::SimError;
use bitwave_tensor::TensorError;
use std::fmt;

/// Errors produced by the pipeline and the experiment drivers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BitwaveError {
    /// An underlying tensor error.
    Tensor(
        /// The propagated tensor error.
        TensorError,
    ),
    /// An underlying grouping/compression/Bit-Flip error.
    Core(
        /// The propagated core error.
        CoreError,
    ),
    /// An underlying simulator error.
    Sim(
        /// The propagated simulator error.
        SimError,
    ),
    /// A layer referenced by an experiment or pipeline job does not exist in
    /// the network (or its weights were not generated).
    MissingLayer {
        /// The network searched.
        network: String,
        /// The missing layer name.
        layer: String,
    },
    /// A model with no layers was handed to the pipeline.
    EmptyModel {
        /// The offending network name.
        network: String,
    },
    /// A model name did not resolve against the
    /// [`bitwave_dnn::models::by_name`] registry.
    UnknownModel(
        /// The propagated registry error (carries the known names).
        bitwave_dnn::models::UnknownModelError,
    ),
    /// An accelerator name did not resolve against the
    /// [`bitwave_accel::spec::AcceleratorSpec::by_name`] registry.
    UnknownAccelerator(
        /// The propagated registry error (carries the known names).
        bitwave_accel::spec::UnknownAcceleratorError,
    ),
    /// A report or request failed to (de)serialize.
    Serialization {
        /// Human-readable serializer error.
        message: String,
    },
    /// The map stage could not select a spatial unrolling (empty SU set,
    /// degenerate layer).
    Mapping(
        /// The propagated mapping error.
        MappingError,
    ),
    /// The design-space exploration of a `MappingPolicy::Searched` map stage
    /// failed.
    Dse(
        /// The propagated DSE error.
        DseError,
    ),
}

impl fmt::Display for BitwaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitwaveError::Tensor(e) => write!(f, "tensor error: {e}"),
            BitwaveError::Core(e) => write!(f, "core error: {e}"),
            BitwaveError::Sim(e) => write!(f, "simulator error: {e}"),
            BitwaveError::MissingLayer { network, layer } => {
                write!(f, "layer `{layer}` not found in network `{network}`")
            }
            BitwaveError::EmptyModel { network } => {
                write!(
                    f,
                    "network `{network}` has no layers to run through the pipeline"
                )
            }
            BitwaveError::UnknownModel(e) => write!(f, "{e}"),
            BitwaveError::UnknownAccelerator(e) => write!(f, "{e}"),
            BitwaveError::Serialization { message } => {
                write!(f, "serialization error: {message}")
            }
            BitwaveError::Mapping(e) => write!(f, "mapping error: {e}"),
            BitwaveError::Dse(e) => write!(f, "dataflow search error: {e}"),
        }
    }
}

impl std::error::Error for BitwaveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BitwaveError::Tensor(e) => Some(e),
            BitwaveError::Core(e) => Some(e),
            BitwaveError::Sim(e) => Some(e),
            BitwaveError::UnknownModel(e) => Some(e),
            BitwaveError::UnknownAccelerator(e) => Some(e),
            BitwaveError::Mapping(e) => Some(e),
            BitwaveError::Dse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for BitwaveError {
    fn from(e: TensorError) -> Self {
        BitwaveError::Tensor(e)
    }
}

impl From<CoreError> for BitwaveError {
    fn from(e: CoreError) -> Self {
        BitwaveError::Core(e)
    }
}

impl From<SimError> for BitwaveError {
    fn from(e: SimError) -> Self {
        BitwaveError::Sim(e)
    }
}

impl From<bitwave_dnn::models::UnknownModelError> for BitwaveError {
    fn from(e: bitwave_dnn::models::UnknownModelError) -> Self {
        BitwaveError::UnknownModel(e)
    }
}

impl From<bitwave_accel::spec::UnknownAcceleratorError> for BitwaveError {
    fn from(e: bitwave_accel::spec::UnknownAcceleratorError) -> Self {
        BitwaveError::UnknownAccelerator(e)
    }
}

impl From<serde_json::Error> for BitwaveError {
    fn from(e: serde_json::Error) -> Self {
        BitwaveError::Serialization {
            message: e.to_string(),
        }
    }
}

impl From<MappingError> for BitwaveError {
    fn from(e: MappingError) -> Self {
        BitwaveError::Mapping(e)
    }
}

impl From<DseError> for BitwaveError {
    fn from(e: DseError) -> Self {
        BitwaveError::Dse(e)
    }
}

/// The crate-wide result alias.
pub type Result<T> = std::result::Result<T, BitwaveError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: BitwaveError = TensorError::Empty.into();
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e: BitwaveError = CoreError::UnsupportedRank(3).into();
        assert!(e.to_string().contains("core error"));
        let e: BitwaveError = SimError::Tensor(TensorError::Empty).into();
        assert!(e.to_string().contains("simulator error"));
        let e = BitwaveError::MissingLayer {
            network: "ResNet18".to_string(),
            layer: "conv9".to_string(),
        };
        assert!(e.to_string().contains("conv9"));
        assert!(e.source().is_none());
        let e = BitwaveError::EmptyModel {
            network: "X".to_string(),
        };
        assert!(e.to_string().contains("no layers"));
    }

    #[test]
    fn registry_and_serialization_conversions() {
        use std::error::Error;
        let e: BitwaveError = bitwave_dnn::models::by_name("nope").unwrap_err().into();
        assert!(e.to_string().contains("unknown model"));
        assert!(e.source().is_some());
        let e: BitwaveError = bitwave_accel::spec::AcceleratorSpec::by_name("nope")
            .unwrap_err()
            .into();
        assert!(e.to_string().contains("unknown accelerator"));
        assert!(e.source().is_some());
        let json_err = serde_json::from_str::<serde_json::Value>("{").unwrap_err();
        let e: BitwaveError = json_err.into();
        assert!(e.to_string().contains("serialization error"));
        assert!(e.source().is_none());
    }

    #[test]
    fn mapping_and_dse_conversions() {
        use std::error::Error;
        let e: BitwaveError = MappingError::EmptySuSet {
            set: "Hollow".to_string(),
        }
        .into();
        assert!(e.to_string().contains("mapping error"));
        assert!(e.to_string().contains("Hollow"));
        assert!(e.source().is_some());
        let e: BitwaveError = DseError::EmptySpace {
            layer: "conv1".to_string(),
        }
        .into();
        assert!(e.to_string().contains("dataflow search error"));
        assert!(e.to_string().contains("conv1"));
        assert!(e.source().is_some());
    }
}
