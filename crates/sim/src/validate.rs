//! Analytical-model-vs-simulator validation (Section V-B: "The presented
//! model has been validated against the RTL model of BitWave, demonstrating
//! a deviation of less than 6 %").
//!
//! We do not have the authors' RTL, but the same validation role is played by
//! the cycle-level engine of this crate: for a given workload and weight
//! tensor, the analytical compute-cycle estimate of `bitwave-accel` (Eq. 2
//! with the imbalance-adjusted column count) is compared against the cycles
//! the simulated array actually takes.

use crate::engine::{BitwaveEngine, EngineConfig, SimStats};
use crate::error::SimError;
use bitwave_core::group::GroupSize;
use bitwave_tensor::{QuantTensor, Shape};
use serde::{Deserialize, Serialize};

/// Outcome of one validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Compute cycles measured by the cycle-level engine.
    pub simulated_cycles: u64,
    /// Compute cycles predicted by the analytical model (Eq. 2).
    pub model_cycles: f64,
    /// Relative deviation `|sim − model| / sim`.
    pub deviation: f64,
    /// Weight compression ratio measured on the streamed weights.
    pub simulated_compression_ratio: f64,
    /// Weight compression ratio predicted by the BCS codec statistics.
    pub model_compression_ratio: f64,
}

impl ValidationReport {
    /// Whether the deviation is within the paper's reported 6 % bound.
    pub fn within_paper_bound(&self) -> bool {
        self.deviation < 0.06
    }
}

/// Validates the analytical compute-cycle model against the cycle-level
/// engine for one lowered matrix multiplication (`input: M×C`,
/// `weights: K×C`).
///
/// # Errors
///
/// Propagates shape and grouping errors from the engine and the analytical
/// model.
pub fn validate_layer(
    input: &QuantTensor,
    weights: &QuantTensor,
    config: EngineConfig,
) -> Result<ValidationReport, SimError> {
    let engine = BitwaveEngine::new(config);
    let (_, stats) = engine.run_matmul(input, weights)?;
    let model_cycles = analytical_compute_cycles(weights, input.shape(), config)?;
    let model_cr = analytical_compression_ratio(weights, config)?;
    Ok(report_from(&stats, model_cycles, model_cr))
}

fn report_from(stats: &SimStats, model_cycles: f64, model_cr: f64) -> ValidationReport {
    let sim = stats.compute_cycles as f64;
    let deviation = if sim == 0.0 {
        if model_cycles == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (sim - model_cycles).abs() / sim
    };
    ValidationReport {
        simulated_cycles: stats.compute_cycles,
        model_cycles,
        deviation,
        simulated_compression_ratio: stats.weight_compression_ratio(),
        model_compression_ratio: model_cr,
    }
}

/// The Eq. 2 analytical estimate specialised to the engine's SU1-style
/// arrangement: `macs × synced-columns / (lanes × utilisation)`.
fn analytical_compute_cycles(
    weights: &QuantTensor,
    input_shape: Shape,
    config: EngineConfig,
) -> Result<f64, SimError> {
    use bitwave_accel::sparsity::LayerSparsityProfile;
    let profile =
        LayerSparsityProfile::from_weights(weights, 0.0, GroupSize::from_len(config.lanes))?;
    let m = input_shape.dim(0) as f64;
    let k = weights.shape().dim(0) as f64;
    let c = weights.shape().dim(1) as f64;
    let macs = m * k * c;
    let util_k = k / ((k / config.ku as f64).ceil() * config.ku as f64);
    let util_m = m / ((m / config.mu as f64).ceil() * config.mu as f64);
    let util_c = c / ((c / config.lanes as f64).ceil() * config.lanes as f64);
    let lanes = (config.num_lanes() as f64) * util_k * util_m * util_c;
    Ok(macs * profile.max_nonzero_columns_synced / lanes)
}

/// The analytical BCS compression ratio of the weights at the engine's group
/// size.
fn analytical_compression_ratio(
    weights: &QuantTensor,
    config: EngineConfig,
) -> Result<f64, SimError> {
    use bitwave_accel::sparsity::LayerSparsityProfile;
    Ok(
        LayerSparsityProfile::from_weights(weights, 0.0, GroupSize::from_len(config.lanes))?
            .bcs_compression_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_tensor::prelude::*;

    fn random_tensor(shape: Shape, seed: u64, spread: f64) -> QuantTensor {
        let gen = WeightGenerator::new(WeightDistribution::Laplacian { scale: spread }, seed);
        quantize_per_tensor(&gen.generate(shape), 8).unwrap()
    }

    #[test]
    fn model_matches_simulator_within_paper_bound() {
        // A well-formed workload (dimensions divisible by the SU) keeps the
        // analytical model within the paper's 6 % of the simulator.
        let input = random_tensor(Shape::d2(32, 128), 1, 1.0);
        let weights = random_tensor(Shape::d2(64, 128), 2, 0.05);
        let report = validate_layer(&input, &weights, EngineConfig::su1()).unwrap();
        assert!(
            report.within_paper_bound(),
            "deviation {:.3} exceeds 6% (sim {}, model {:.1})",
            report.deviation,
            report.simulated_cycles,
            report.model_cycles
        );
    }

    #[test]
    fn compression_ratio_estimates_agree() {
        let input = random_tensor(Shape::d2(16, 256), 3, 1.0);
        let weights = random_tensor(Shape::d2(32, 256), 4, 0.04);
        let report = validate_layer(&input, &weights, EngineConfig::su1()).unwrap();
        let rel = (report.simulated_compression_ratio - report.model_compression_ratio).abs()
            / report.model_compression_ratio;
        assert!(rel < 0.05, "compression ratios diverge by {rel:.3}");
        assert!(report.simulated_compression_ratio > 1.0);
    }

    #[test]
    fn ragged_dimensions_stay_reasonably_close() {
        // Dimensions that do not divide the SU exercise the utilisation terms.
        let input = random_tensor(Shape::d2(21, 100), 5, 1.0);
        let weights = random_tensor(Shape::d2(50, 100), 6, 0.05);
        let report = validate_layer(&input, &weights, EngineConfig::su1()).unwrap();
        assert!(
            report.deviation < 0.15,
            "deviation {:.3} too large for ragged dims",
            report.deviation
        );
    }

    #[test]
    fn dense_weights_validate_exactly() {
        // Full-range weights: no skipping anywhere, both counts are exact.
        let input = random_tensor(Shape::d2(16, 64), 7, 1.0);
        let gen = WeightGenerator::new(WeightDistribution::Uniform { range: 1.0 }, 8);
        let weights = quantize_per_tensor(&gen.generate(Shape::d2(32, 64)), 8).unwrap();
        let report = validate_layer(&input, &weights, EngineConfig::su1()).unwrap();
        assert!(report.deviation < 0.06, "deviation {:.3}", report.deviation);
    }
}
