//! The 512-BCE BitWave array (Fig. 10 / Fig. 11).
//!
//! The engine executes a layer lowered to a matrix multiplication
//! `O[m][k] = Σ_c A[m][c] · W[k][c]` (convolutions are lowered with im2col,
//! linear/LSTM/attention layers are already in this form) from
//! **BCS-compressed weights**, under an SU1-style spatial arrangement
//! `[Cu = 8, OXu = mu, Ku = ku]`:
//!
//! * weights are grouped 8 input channels at a time and compressed with the
//!   sign-magnitude BCS codec — the engine never decompresses them, it
//!   streams the stored non-zero columns straight into the BCEs;
//! * `ku × mu` BCEs work in parallel on `ku` output channels × `mu` output
//!   positions;
//! * the eight kernels that share one packed 64-bit weight segment advance in
//!   lockstep, so a synchronisation set's cycle cost for one channel group is
//!   the *maximum* non-zero-column count across its kernels (the load
//!   imbalance the analytical model adjusts for);
//! * the functional result of every output is produced by the
//!   [`BitColumnEngine`] arithmetic and can be compared bit-exactly against
//!   the Int8 reference kernels.

use crate::bce::BitColumnEngine;
use crate::error::{check_reference, SimError};
use crate::zcip::ZeroColumnIndexParser;
use bitwave_core::compress::{BcsCodec, BcsGroup};
use bitwave_core::group::{group_slice, GroupSize};
use bitwave_tensor::bitplane::BitplaneTensor;
use bitwave_tensor::bits::Encoding;
use bitwave_tensor::{QuantTensor, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// Spatial configuration of the simulated array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Output channels processed in parallel (`Ku`).
    pub ku: usize,
    /// Output positions processed in parallel (`OXu`, here output rows of the
    /// lowered matrix).
    pub mu: usize,
    /// Input channels per weight group (`Cu`, the BCE lane count).
    pub lanes: usize,
    /// Kernels sharing one packed weight segment (and therefore one column
    /// schedule) — the synchronisation width.
    pub sync_kernels: usize,
}

impl EngineConfig {
    /// The SU1 arrangement of Table I: `[Cu = 8, OXu = 16, Ku = 32]`,
    /// 512 BCEs, 8 kernels per packed segment.
    pub fn su1() -> Self {
        Self {
            ku: 32,
            mu: 16,
            lanes: 8,
            sync_kernels: 8,
        }
    }

    /// Total number of BCEs in the configuration.
    pub fn num_bces(&self) -> usize {
        self.ku * self.mu
    }

    /// Total 1b×8b multiplier lanes.
    pub fn num_lanes(&self) -> usize {
        self.num_bces() * self.lanes
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::su1()
    }
}

/// Execution statistics of one simulated layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Compute cycles (column-serial, including synchronisation stalls).
    pub compute_cycles: u64,
    /// Dense (uncompressed) weight volume in bits streamed per tile pass.
    pub dense_weight_bits: u64,
    /// Compute cycles the same array would need without any column skipping
    /// (all 8 columns of every group).
    pub dense_cycles: u64,
    /// MAC-equivalent operations of the workload.
    pub macs: u64,
    /// Weight payload bits streamed from the weight SRAM (non-zero columns).
    pub weight_payload_bits: u64,
    /// Weight index bits streamed (8 per group).
    pub weight_index_bits: u64,
    /// Activation bytes broadcast to the array.
    pub activation_bytes: u64,
    /// Output values written back.
    pub outputs_written: u64,
    /// Bit-columns skipped thanks to BCS.
    pub skipped_columns: u64,
}

impl SimStats {
    /// Speedup of column skipping over dense column-serial execution.
    pub fn column_skip_speedup(&self) -> f64 {
        if self.compute_cycles == 0 {
            1.0
        } else {
            self.dense_cycles as f64 / self.compute_cycles as f64
        }
    }

    /// Effective weight compression ratio of the streamed weights
    /// (uncompressed bits / streamed payload+index bits).
    pub fn weight_compression_ratio(&self) -> f64 {
        let streamed = self.weight_payload_bits + self.weight_index_bits;
        if streamed == 0 {
            1.0
        } else {
            (self.macs_weight_bits()) as f64 / streamed as f64
        }
    }

    fn macs_weight_bits(&self) -> u64 {
        self.dense_weight_bits
    }

    /// Dense (uncompressed) weight volume in bits.
    pub fn dense_weight_volume_bits(&self) -> u64 {
        self.dense_weight_bits
    }
}

/// The simulated BitWave array.
#[derive(Debug, Clone)]
pub struct BitwaveEngine {
    config: EngineConfig,
    parser: ZeroColumnIndexParser,
}

impl BitwaveEngine {
    /// Creates an engine with the given spatial configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            parser: ZeroColumnIndexParser::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Runs a lowered matrix multiplication `A (M×C) · Wᵀ (K×C)` from
    /// BCS-compressed weights and returns the `M×K` outputs (row major)
    /// together with execution statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Tensor`] if the inner dimensions of `activations`
    /// and `weights` disagree or either tensor is not rank-2.
    pub fn run_matmul(
        &self,
        activations: &QuantTensor,
        weights: &QuantTensor,
    ) -> Result<(Vec<i32>, SimStats), SimError> {
        let a_shape = activations.shape();
        let w_shape = weights.shape();
        if a_shape.rank() != 2 || w_shape.rank() != 2 || a_shape.dim(1) != w_shape.dim(1) {
            return Err(SimError::Tensor(TensorError::IncompatibleShapes {
                left: a_shape,
                right: w_shape,
            }));
        }
        let m = a_shape.dim(0);
        let c = a_shape.dim(1);
        let k = w_shape.dim(0);
        let lanes = self.config.lanes;
        let c_groups = c.div_ceil(lanes);

        // Compress every kernel's weights group by group (offline
        // pre-processing in the real system, Fig. 10).
        let mut kernel_groups: Vec<Vec<BcsGroup>> = Vec::with_capacity(k);
        let codec = BcsCodec::new(GroupSize::from_len(lanes), Encoding::SignMagnitude);
        let wdata = weights.data();
        let mut stats = SimStats::default();
        for ki in 0..k {
            let row = &wdata[ki * c..(ki + 1) * c];
            let grouped = group_slice(row, GroupSize::from_len(lanes));
            // One bitplane packing per kernel row feeds both the size
            // accounting (word-parallel, no payload materialisation) and the
            // streamed BCS groups.
            let planes = grouped.to_bitplanes();
            let sizes = codec.measure_packed(&planes, grouped.padded_len());
            stats.weight_payload_bits += sizes.payload_bits as u64;
            stats.weight_index_bits += sizes.index_bits as u64;
            let groups = rebuild_groups(&planes);
            debug_assert_eq!(groups.len(), c_groups);
            kernel_groups.push(groups);
        }
        stats.dense_weight_bits = (k * c_groups * lanes * 8) as u64;
        stats.macs = (m * k * c) as u64;
        stats.outputs_written = (m * k) as u64;

        let adata = activations.data();
        let mut outputs = vec![0i32; m * k];

        // Tile the output space: mu rows × ku kernels per tile.
        let k_tiles = k.div_ceil(self.config.ku);
        let m_tiles = m.div_ceil(self.config.mu);
        for kt in 0..k_tiles {
            let k_begin = kt * self.config.ku;
            let k_end = (k_begin + self.config.ku).min(k);
            for mt in 0..m_tiles {
                let m_begin = mt * self.config.mu;
                let m_end = (m_begin + self.config.mu).min(m);

                // Activations for this tile are broadcast to every BCE row.
                stats.activation_bytes += ((m_end - m_begin) * c) as u64;

                // Cycle accounting: each synchronisation set of kernels
                // advances independently; the tile completes when the slowest
                // set has streamed all of its channel groups.
                let mut slowest_set_cycles = 0u64;
                for set_begin in (k_begin..k_end).step_by(self.config.sync_kernels) {
                    let set_end = (set_begin + self.config.sync_kernels).min(k_end);
                    let mut set_cycles = 0u64;
                    for cg in 0..c_groups {
                        let max_cols = kernel_groups[set_begin..set_end]
                            .iter()
                            .map(|groups| u64::from(groups[cg].index.count_ones()))
                            .max()
                            .unwrap_or(0);
                        set_cycles += max_cols;
                        stats.skipped_columns += (set_end - set_begin) as u64 * 8 - max_cols;
                    }
                    slowest_set_cycles = slowest_set_cycles.max(set_cycles);
                }
                stats.compute_cycles += slowest_set_cycles;
                stats.dense_cycles += (c_groups * 8) as u64;

                // Functional execution through the BCE arithmetic.
                for ki in k_begin..k_end {
                    for mi in m_begin..m_end {
                        let mut bce = BitColumnEngine::new();
                        for (cg, group) in kernel_groups[ki].iter().enumerate() {
                            let c_begin = cg * lanes;
                            let c_end = (c_begin + lanes).min(c);
                            let mut lane_acts = [0i8; 64];
                            let n = c_end - c_begin;
                            lane_acts[..n]
                                .copy_from_slice(&adata[mi * c + c_begin..mi * c + c_end]);
                            let schedule = self.parser.parse(group.index);
                            bce.process_group(group, &schedule, &lane_acts[..lanes.min(64)]);
                        }
                        outputs[mi * k + ki] = bce.accumulator() as i32;
                    }
                }
            }
        }

        Ok((outputs, stats))
    }

    /// Runs a linear layer (`input: M×C`, `weights: K×C`) and checks the
    /// result against the Int8 reference kernel, returning the outputs and
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the matmul and reports a
    /// [`SimError::ReferenceMismatch`] if the simulated result disagrees with
    /// the reference (which would indicate a simulator defect).
    pub fn run_linear_verified(
        &self,
        input: &QuantTensor,
        weights: &QuantTensor,
    ) -> Result<(Vec<i32>, SimStats), SimError> {
        let (outputs, stats) = self.run_matmul(input, weights)?;
        let (reference, _) = bitwave_dnn::infer::linear_int8(input, weights)?;
        check_reference(&outputs, &reference)?;
        Ok((outputs, stats))
    }

    /// Lowers a small convolution to an im2col matrix multiplication and runs
    /// it on the engine, checking against the reference convolution.
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent operands and a
    /// [`SimError::ReferenceMismatch`] if the lowered result disagrees with
    /// the reference convolution.
    pub fn run_conv_verified(
        &self,
        input: &QuantTensor,
        weights: &QuantTensor,
        stride: usize,
        padding: usize,
    ) -> Result<(Vec<i32>, SimStats), SimError> {
        let (patches, k_weights, out_shape) = im2col(input, weights, stride, padding)?;
        let (outputs, stats) = self.run_matmul(&patches, &k_weights)?;
        let (reference, ref_shape) =
            bitwave_dnn::infer::conv2d_int8(input, weights, stride, padding)?;
        if ref_shape != out_shape {
            return Err(SimError::Tensor(TensorError::IncompatibleShapes {
                left: ref_shape,
                right: out_shape,
            }));
        }
        // The matmul produces [position][k]; the reference is [b][k][oy][ox].
        let k = k_weights.shape().dim(0);
        let positions = patches.shape().dim(0);
        let (b, oy, ox) = (out_shape.dim(0), out_shape.dim(2), out_shape.dim(3));
        let mut rearranged = vec![0i32; reference.len()];
        for pos in 0..positions {
            let bi = pos / (oy * ox);
            let oyi = (pos / ox) % oy;
            let oxi = pos % ox;
            for ki in 0..k {
                rearranged[out_shape.offset(&[bi, ki, oyi, oxi])] = outputs[pos * k + ki];
            }
        }
        debug_assert_eq!(positions, b * oy * ox);
        check_reference(&rearranged, &reference)?;
        Ok((outputs, stats))
    }
}

/// Rebuilds the per-kernel BCS groups (index + packed columns) for one weight
/// row from its bitplane packing; used by the engine to stream columns
/// without re-deriving offsets from the flattened compressed tensor.  Each
/// group's index and stored columns are read straight off the packed planes.
fn rebuild_groups(planes: &BitplaneTensor) -> Vec<BcsGroup> {
    (0..planes.num_groups())
        .map(|gi| {
            let group = planes.group_planes(Encoding::SignMagnitude, gi);
            let index = group.nonzero_column_mask();
            let columns = (0..8)
                .filter(|&b| (index >> b) & 1 == 1)
                .map(|b| group.plane(b))
                .collect();
            BcsGroup { index, columns }
        })
        .collect()
}

/// Lowers a convolution input to im2col patches (`positions × (C·FY·FX)`) and
/// reshapes the weights to `K × (C·FY·FX)`.
fn im2col(
    input: &QuantTensor,
    weights: &QuantTensor,
    stride: usize,
    padding: usize,
) -> Result<(QuantTensor, QuantTensor, Shape), TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    if ishape.rank() != 4 || wshape.rank() != 4 || ishape.dim(1) != wshape.dim(1) {
        return Err(TensorError::IncompatibleShapes {
            left: ishape,
            right: wshape,
        });
    }
    let (b, c, h, w) = (ishape.dim(0), ishape.dim(1), ishape.dim(2), ishape.dim(3));
    let (k, _, fy, fx) = (wshape.dim(0), wshape.dim(1), wshape.dim(2), wshape.dim(3));
    let oy = (h + 2 * padding - fy) / stride + 1;
    let ox = (w + 2 * padding - fx) / stride + 1;
    let patch_len = c * fy * fx;
    let positions = b * oy * ox;
    let mut patches = vec![0i8; positions * patch_len];
    let idata = input.data();
    let mut row = 0usize;
    for bi in 0..b {
        for oyi in 0..oy {
            for oxi in 0..ox {
                let mut col = 0usize;
                for ci in 0..c {
                    for fyi in 0..fy {
                        for fxi in 0..fx {
                            let iy = (oyi * stride + fyi) as isize - padding as isize;
                            let ix = (oxi * stride + fxi) as isize - padding as isize;
                            patches[row * patch_len + col] =
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    idata[ishape.offset(&[bi, ci, iy as usize, ix as usize])]
                                } else {
                                    0
                                };
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    let patches = QuantTensor::new(Shape::d2(positions, patch_len), patches, input.params())?;
    let k_weights = weights.reshaped(Shape::d2(k, patch_len))?;
    let out_shape = Shape::feature_map(b, k, oy, ox);
    Ok((patches, k_weights, out_shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_tensor::prelude::*;
    use bitwave_tensor::quant::QuantParams;

    fn tensor(shape: Shape, data: Vec<i8>) -> QuantTensor {
        QuantTensor::new(shape, data, QuantParams::unit()).unwrap()
    }

    fn random_tensor(shape: Shape, seed: u64, range: f64) -> QuantTensor {
        let gen = WeightGenerator::new(WeightDistribution::Uniform { range }, seed);
        quantize_per_tensor(&gen.generate(shape), 8).unwrap()
    }

    #[test]
    fn config_accessors() {
        let c = EngineConfig::su1();
        assert_eq!(c.num_bces(), 512);
        assert_eq!(c.num_lanes(), 4096);
        assert_eq!(EngineConfig::default(), c);
        assert_eq!(BitwaveEngine::new(c).config(), c);
    }

    #[test]
    fn matmul_matches_reference_on_random_operands() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let a = random_tensor(Shape::d2(5, 37), 1, 1.0);
        let w = random_tensor(Shape::d2(11, 37), 2, 0.2);
        let (out, stats) = engine.run_linear_verified(&a, &w).unwrap();
        assert_eq!(out.len(), 5 * 11);
        assert_eq!(stats.macs, 5 * 11 * 37);
        assert!(stats.compute_cycles > 0);
        assert!(stats.compute_cycles <= stats.dense_cycles);
    }

    #[test]
    fn sparse_weights_skip_columns_and_compress() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let a = random_tensor(Shape::d2(4, 64), 3, 1.0);
        // Small-magnitude weights: plenty of zero columns.
        let w = tensor(
            Shape::d2(16, 64),
            (0..16 * 64).map(|i| ((i * 7) % 11) as i8 - 5).collect(),
        );
        let (_, stats) = engine.run_linear_verified(&a, &w).unwrap();
        assert!(
            stats.column_skip_speedup() > 1.3,
            "{}",
            stats.column_skip_speedup()
        );
        assert!(stats.weight_compression_ratio() > 1.2);
        assert!(stats.skipped_columns > 0);
    }

    #[test]
    fn dense_full_range_weights_get_no_speedup() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let a = random_tensor(Shape::d2(2, 32), 5, 1.0);
        let w = tensor(
            Shape::d2(8, 32),
            (0..256)
                .map(|i| if i % 2 == 0 { 127 } else { -127 })
                .collect(),
        );
        let (_, stats) = engine.run_linear_verified(&a, &w).unwrap();
        assert!((stats.column_skip_speedup() - 1.0).abs() < 1e-9);
        assert!(stats.weight_compression_ratio() <= 1.0);
    }

    #[test]
    fn all_zero_weights_finish_in_zero_compute_cycles() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let a = random_tensor(Shape::d2(3, 16), 6, 1.0);
        let w = tensor(Shape::d2(4, 16), vec![0i8; 64]);
        let (out, stats) = engine.run_linear_verified(&a, &w).unwrap();
        assert!(out.iter().all(|&v| v == 0));
        assert_eq!(stats.compute_cycles, 0);
    }

    #[test]
    fn conv_lowering_matches_reference() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let input = random_tensor(Shape::feature_map(1, 3, 8, 8), 7, 1.0);
        let weights = random_tensor(Shape::conv_weight(6, 3, 3, 3), 8, 0.1);
        let (_, stats) = engine.run_conv_verified(&input, &weights, 1, 1).unwrap();
        assert_eq!(stats.macs, 6 * 3 * 3 * 3 * 8 * 8);
        assert!(stats.compute_cycles > 0);
    }

    #[test]
    fn strided_conv_lowering_matches_reference() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let input = random_tensor(Shape::feature_map(1, 4, 9, 9), 9, 1.0);
        let weights = random_tensor(Shape::conv_weight(5, 4, 3, 3), 10, 0.2);
        let (_, stats) = engine.run_conv_verified(&input, &weights, 2, 0).unwrap();
        assert!(stats.outputs_written > 0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let engine = BitwaveEngine::new(EngineConfig::su1());
        let a = random_tensor(Shape::d2(2, 16), 1, 1.0);
        let w = random_tensor(Shape::d2(4, 17), 2, 1.0);
        assert!(engine.run_matmul(&a, &w).is_err());
    }

    #[test]
    fn sync_width_one_never_exceeds_sync_width_eight_cycles() {
        let a = random_tensor(Shape::d2(4, 64), 11, 1.0);
        let w = random_tensor(Shape::d2(32, 64), 12, 0.1);
        let synced = BitwaveEngine::new(EngineConfig::su1());
        let unsynced = BitwaveEngine::new(EngineConfig {
            sync_kernels: 1,
            ..EngineConfig::su1()
        });
        let (_, s1) = synced.run_matmul(&a, &w).unwrap();
        let (_, s2) = unsynced.run_matmul(&a, &w).unwrap();
        // Without the lockstep constraint the slowest-kernel penalty shrinks
        // to the per-kernel cost; note the tile still waits for its slowest
        // synchronisation set.
        assert!(s2.compute_cycles <= s1.compute_cycles);
    }
}
