//! The BitWave Compute Engine (BCE) and its sign-magnitude multipliers
//! (Fig. 8).
//!
//! One BCE multiplies a single 1-bit weight column (8 weights wide) with
//! eight full-precision two's-complement activations per cycle, following
//! the five steps of Fig. 8:
//!
//! 1. **Input loading** — 8 activations, an 8×1b weight column, the weight
//!    sign bits;
//! 2. **SMM** — eight AND gates form the partial products, the XOR of weight
//!    and activation signs decides each product's sign;
//! 3. **Partial-sum accumulation** — the eight signed partial products are
//!    added;
//! 4. **Single shift** — one shared shifter aligns the column sum to its bit
//!    significance ("add-then-shift", the source of the Table IV energy
//!    advantage over per-lane shifting);
//! 5. **Output generation** — the shifted sum accumulates into the output
//!    register.

use crate::zcip::ParsedIndex;
use bitwave_core::compress::BcsGroup;
use serde::{Deserialize, Serialize};

/// Number of sign-magnitude multiplier lanes per BCE (the `Cu = 8` weights of
/// one group slice).
pub const BCE_LANES: usize = 8;

/// Statistics of one group execution on a BCE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BceStats {
    /// Compute cycles spent (one per non-zero magnitude column).
    pub cycles: u64,
    /// 1b×8b multiplications performed (lanes × cycles).
    pub bit_multiplications: u64,
    /// Columns skipped thanks to bit-column sparsity.
    pub skipped_columns: u64,
}

/// One BitWave Compute Engine.
#[derive(Debug, Clone, Default)]
pub struct BitColumnEngine {
    accumulator: i64,
    stats: BceStats,
}

impl BitColumnEngine {
    /// A fresh engine with a cleared accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the output register (between output pixels / channels).
    pub fn reset_accumulator(&mut self) {
        self.accumulator = 0;
    }

    /// The accumulated output value.
    pub fn accumulator(&self) -> i64 {
        self.stats_checked_accumulator()
    }

    fn stats_checked_accumulator(&self) -> i64 {
        self.accumulator
    }

    /// Execution statistics since construction.
    pub fn stats(&self) -> BceStats {
        self.stats
    }

    /// Executes one compressed weight group against `activations`
    /// (one activation per lane), following the ZCIP schedule.
    ///
    /// `group` must come from a sign-magnitude [`bitwave_core::compress::BcsCodec`];
    /// `schedule` must be the parse of `group.index`.
    ///
    /// # Panics
    ///
    /// Panics if `activations.len()` exceeds [`BCE_LANES`] or the schedule is
    /// inconsistent with the group's stored columns.
    pub fn process_group(
        &mut self,
        group: &BcsGroup,
        schedule: &ParsedIndex,
        activations: &[i8],
    ) -> i64 {
        assert!(
            activations.len() <= BCE_LANES,
            "a BCE processes at most {BCE_LANES} activations"
        );

        // Step 1: input loading — locate the sign column (bit 7) if present.
        let mut stored_columns = group.columns.iter();
        let mut magnitude_columns = Vec::with_capacity(schedule.ops.len());
        for bit in 0..7u8 {
            if (group.index >> bit) & 1 == 1 {
                magnitude_columns.push((
                    bit,
                    *stored_columns.next().expect("column present for index bit"),
                ));
            }
        }
        let sign_column: u64 = if schedule.sign_request {
            *stored_columns
                .next()
                .expect("sign column present when Sign Rqst is raised")
        } else {
            0
        };

        debug_assert_eq!(magnitude_columns.len(), schedule.ops.len());

        let mut group_sum = 0i64;
        for (op, (bit, column)) in schedule.ops.iter().zip(&magnitude_columns) {
            debug_assert_eq!(op.shift, *bit);
            // Steps 2-3: sign-magnitude multiply and partial-sum accumulation.
            let mut partial = 0i64;
            for (lane, &activation) in activations.iter().enumerate() {
                if (column >> lane) & 1 == 1 {
                    let negative = (sign_column >> lane) & 1 == 1;
                    let product = i64::from(activation);
                    partial += if negative { -product } else { product };
                }
            }
            // Step 4: single shift shared by the whole column.
            group_sum += partial << op.shift;
            self.stats.cycles += 1;
            self.stats.bit_multiplications += activations.len() as u64;
        }
        self.stats.skipped_columns += 7 - schedule.ops.len() as u64;

        // Step 5: output generation.
        self.accumulator += group_sum;
        group_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zcip::ZeroColumnIndexParser;
    use bitwave_core::compress::BcsCodec;
    use bitwave_core::group::GroupSize;
    use bitwave_core::prelude::WeightCodec;
    use bitwave_dnn::infer::dot_int8;
    use bitwave_tensor::bits::Encoding;
    use proptest::prelude::*;

    /// Runs one group of up to 8 weights through a BCE and returns its output.
    fn bce_dot(weights: &[i8], activations: &[i8]) -> i64 {
        let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
        let compressed = codec.compress(weights);
        let decompressed = compressed.decompress();
        assert_eq!(&decompressed[..weights.len()], weights);
        // Reconstruct the groups the codec built (a single group here).
        let group = single_group(weights);
        let parser = ZeroColumnIndexParser::new();
        let schedule = parser.parse(group.index);
        let mut bce = BitColumnEngine::new();
        bce.process_group(&group, &schedule, activations)
    }

    fn single_group(weights: &[i8]) -> BcsGroup {
        let codec = BcsCodec::new(GroupSize::G8, Encoding::SignMagnitude);
        let compressed = codec.compress(weights);
        // Serialize through the public decompression contract to get the
        // group back out: re-compress a padded copy and steal its group.
        let _ = compressed;
        // The codec groups 8 weights per group; rebuild explicitly.
        let mut padded = weights.to_vec();
        padded.resize(8, 0);
        let groups = bitwave_core::group::group_slice(&padded, GroupSize::G8);
        let c = codec.compress_groups(groups.iter(), padded.len());
        let d = c.decompress();
        assert_eq!(&d[..weights.len()], weights);
        // Extract via a tiny re-parse: compress_groups stores exactly one group.
        extract_first_group(&padded)
    }

    fn extract_first_group(padded: &[i8]) -> BcsGroup {
        use bitwave_tensor::bits::{nonzero_column_mask, pack_column};
        let index = nonzero_column_mask(padded, Encoding::SignMagnitude);
        let columns = (0..8)
            .filter(|&b| (index >> b) & 1 == 1)
            .map(|b| pack_column(padded, b, Encoding::SignMagnitude))
            .collect();
        BcsGroup { index, columns }
    }

    #[test]
    fn bce_matches_reference_dot_product_on_known_values() {
        let weights = [3i8, -3, 0, 127, -127, 5, -64, 1];
        let activations = [10i8, -20, 30, -1, 2, -3, 4, 100];
        let expected = dot_int8(&weights, &activations) as i64;
        assert_eq!(bce_dot(&weights, &activations), expected);
    }

    #[test]
    fn all_zero_weights_take_zero_cycles() {
        let weights = [0i8; 8];
        let activations = [11i8; 8];
        let group = extract_first_group(&weights);
        let schedule = ZeroColumnIndexParser::new().parse(group.index);
        let mut bce = BitColumnEngine::new();
        let out = bce.process_group(&group, &schedule, &activations);
        assert_eq!(out, 0);
        assert_eq!(bce.stats().cycles, 0);
        assert_eq!(bce.stats().skipped_columns, 7);
    }

    #[test]
    fn accumulator_adds_across_groups() {
        let activations = [1i8, 2, 3, 4, 5, 6, 7, 8];
        let w1 = [1i8, 1, 1, 1, 1, 1, 1, 1];
        let w2 = [-1i8, -1, -1, -1, -1, -1, -1, -1];
        let g1 = extract_first_group(&w1);
        let g2 = extract_first_group(&w2);
        let parser = ZeroColumnIndexParser::new();
        let mut bce = BitColumnEngine::new();
        bce.process_group(&g1, &parser.parse(g1.index), &activations);
        bce.process_group(&g2, &parser.parse(g2.index), &activations);
        assert_eq!(bce.accumulator(), 0);
        bce.reset_accumulator();
        assert_eq!(bce.accumulator(), 0);
        assert!(bce.stats().cycles >= 2);
    }

    #[test]
    fn stats_track_skipped_columns() {
        // Weights using only magnitude bit 1: six magnitude columns skipped.
        let weights = [2i8, -2, 2, 2, -2, 2, 2, 2];
        let activations = [1i8; 8];
        let group = extract_first_group(&weights);
        let schedule = ZeroColumnIndexParser::new().parse(group.index);
        let mut bce = BitColumnEngine::new();
        let out = bce.process_group(&group, &schedule, &activations);
        assert_eq!(out, dot_int8(&weights, &activations) as i64);
        assert_eq!(bce.stats().cycles, 1);
        assert_eq!(bce.stats().skipped_columns, 6);
        assert_eq!(bce.stats().bit_multiplications, 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn bce_equals_reference_dot_product(
            weights in proptest::collection::vec(-127i8..=127, 1..=8),
            activations in proptest::collection::vec(-127i8..=127, 1..=8),
        ) {
            let n = weights.len().min(activations.len());
            let w = &weights[..n];
            let a = &activations[..n];
            let mut padded_w = w.to_vec();
            padded_w.resize(8, 0);
            let group = extract_first_group(&padded_w);
            let schedule = ZeroColumnIndexParser::new().parse(group.index);
            let mut bce = BitColumnEngine::new();
            let mut padded_a = a.to_vec();
            padded_a.resize(8, 0);
            let out = bce.process_group(&group, &schedule, &padded_a);
            prop_assert_eq!(out, dot_int8(w, a) as i64);
        }

        #[test]
        fn cycle_count_equals_nonzero_magnitude_columns(
            weights in proptest::collection::vec(-127i8..=127, 8),
        ) {
            let group = extract_first_group(&weights);
            let schedule = ZeroColumnIndexParser::new().parse(group.index);
            let mut bce = BitColumnEngine::new();
            bce.process_group(&group, &schedule, &[1i8; 8]);
            prop_assert_eq!(bce.stats().cycles as u32, (group.index & 0x7F).count_ones());
        }
    }
}
