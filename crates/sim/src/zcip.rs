//! The Zero-Column Index Parser (ZCIP, Fig. 7).
//!
//! Every compressed weight group carries an 8-bit index whose bit `b` is set
//! when bit-column `b` is non-zero and therefore present in the compressed
//! stream.  The ZCIP splits the index into the sign column (MSB) and the
//! seven magnitude columns, emits one shift amount per non-zero magnitude
//! column per cycle (LSB first), raises `Sign Rqst` when the sign column
//! must be fetched, and reports the number of cycles the associated
//! computation will take through the synchronisation counter.
//!
//! In *dense mode* the parser ignores the index and emits every column of
//! the configured precision, which is how BitWave handles uncompressed or
//! deeply-quantised weights without paying the index overhead.

use serde::{Deserialize, Serialize};

/// One micro-operation emitted by the parser: process the weight bit-column
/// at `shift` significance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnOp {
    /// Bit significance of the column (0 = LSB … 6 = MSB-1 of the magnitude).
    pub shift: u8,
}

/// The parsed schedule of one weight group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedIndex {
    /// Whether the sign column must be fetched (`Sign Rqst` in Fig. 7).
    pub sign_request: bool,
    /// The magnitude-column operations in issue order (LSB first).
    pub ops: Vec<ColumnOp>,
}

impl ParsedIndex {
    /// Number of compute cycles this group needs (`Sync.ctr`): one per
    /// non-zero magnitude column.
    pub fn sync_cycles(&self) -> usize {
        self.ops.len()
    }
}

/// The Zero-Column Index Parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroColumnIndexParser {
    dense_mode: bool,
    /// Weight precision used in dense mode (bits including sign, 2..=8).
    dense_precision: u8,
}

impl ZeroColumnIndexParser {
    /// A parser in sparse (index-driven) mode.
    pub fn new() -> Self {
        Self {
            dense_mode: false,
            dense_precision: 8,
        }
    }

    /// A parser in dense mode with the given weight precision.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is not in `2..=8`.
    pub fn dense(precision: u8) -> Self {
        assert!(
            (2..=8).contains(&precision),
            "dense-mode precision must be 2..=8 bits, got {precision}"
        );
        Self {
            dense_mode: true,
            dense_precision: precision,
        }
    }

    /// Whether the parser is in dense mode.
    pub fn is_dense_mode(&self) -> bool {
        self.dense_mode
    }

    /// Parses one 8-bit non-zero-column index into a column schedule.
    pub fn parse(&self, index: u8) -> ParsedIndex {
        if self.dense_mode {
            // Dense mode: emit every magnitude column of the configured
            // precision and always fetch the sign column.
            let magnitude_bits = self.dense_precision - 1;
            return ParsedIndex {
                sign_request: true,
                ops: (0..magnitude_bits)
                    .map(|shift| ColumnOp { shift })
                    .collect(),
            };
        }
        let sign_request = index & 0x80 != 0;
        let ops = (0..7u8)
            .filter(|&b| (index >> b) & 1 == 1)
            .map(|shift| ColumnOp { shift })
            .collect();
        ParsedIndex { sign_request, ops }
    }
}

impl Default for ZeroColumnIndexParser {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sparse_mode_emits_only_nonzero_columns() {
        let parser = ZeroColumnIndexParser::new();
        // Index: sign column set, magnitude columns 0 and 2 set.
        let parsed = parser.parse(0b1000_0101);
        assert!(parsed.sign_request);
        assert_eq!(
            parsed.ops,
            vec![ColumnOp { shift: 0 }, ColumnOp { shift: 2 }]
        );
        assert_eq!(parsed.sync_cycles(), 2);
    }

    #[test]
    fn all_zero_index_needs_no_cycles() {
        let parsed = ZeroColumnIndexParser::new().parse(0);
        assert!(!parsed.sign_request);
        assert_eq!(parsed.sync_cycles(), 0);
    }

    #[test]
    fn sign_only_index() {
        let parsed = ZeroColumnIndexParser::new().parse(0b1000_0000);
        assert!(parsed.sign_request);
        assert_eq!(parsed.sync_cycles(), 0);
    }

    #[test]
    fn dense_mode_ignores_index() {
        let parser = ZeroColumnIndexParser::dense(8);
        let parsed = parser.parse(0b0000_0001);
        assert!(parsed.sign_request);
        assert_eq!(parsed.sync_cycles(), 7);
        assert!(parser.is_dense_mode());
        let parser4 = ZeroColumnIndexParser::dense(4);
        assert_eq!(parser4.parse(0xFF).sync_cycles(), 3);
    }

    #[test]
    #[should_panic(expected = "2..=8")]
    fn dense_mode_rejects_invalid_precision() {
        ZeroColumnIndexParser::dense(1);
    }

    proptest! {
        #[test]
        fn cycle_count_matches_magnitude_popcount(index in 0u8..=255) {
            let parsed = ZeroColumnIndexParser::new().parse(index);
            prop_assert_eq!(parsed.sync_cycles() as u32, (index & 0x7F).count_ones());
            prop_assert_eq!(parsed.sign_request, index & 0x80 != 0);
            // Ops are strictly increasing in shift (LSB first).
            prop_assert!(parsed.ops.windows(2).all(|w| w[0].shift < w[1].shift));
        }
    }
}
