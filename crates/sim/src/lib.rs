//! # bitwave-sim
//!
//! A cycle-level simulator of the BitWave NPU micro-architecture
//! (Section IV of the paper).  Where `bitwave-accel` estimates performance
//! analytically, this crate *executes* layers on a software model of the
//! hardware:
//!
//! * [`zcip`] — the Zero-Column Index Parser: walks the 8-bit non-zero-column
//!   index of each compressed weight group, emits one (column, shift) pair
//!   per cycle, raises the sign request and drives the synchronisation
//!   counter (Fig. 7).
//! * [`bce`] — the BitWave Compute Engine: 8 sign-magnitude 1b×8b
//!   multipliers, partial-sum adder tree, single shared shifter and output
//!   register, executing the 5-step pipeline of Fig. 8.
//! * [`engine`] — the 512-BCE array with data fetcher/dispatcher, executing a
//!   whole layer (lowered to a matrix multiplication) from BCS-compressed
//!   weights under a Table-I spatial unrolling, producing both the functional
//!   result and cycle/access statistics.
//! * [`validate`] — the model-vs-simulator validation the paper uses to trust
//!   its analytical results ("a deviation of less than 6 %").
//!
//! The simulator's outputs are checked bit-exactly against the Int8 reference
//! kernels of `bitwave-dnn`, which is the strongest functional argument that
//! bit-column-serial arithmetic computes the same results as a conventional
//! MAC array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bce;
pub mod engine;
pub mod error;
pub mod validate;
pub mod zcip;

pub use bce::BitColumnEngine;
pub use engine::{BitwaveEngine, EngineConfig, SimStats};
pub use error::SimError;
pub use validate::{validate_layer, ValidationReport};
pub use zcip::ZeroColumnIndexParser;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bce::BitColumnEngine;
    pub use crate::engine::{BitwaveEngine, EngineConfig, SimStats};
    pub use crate::error::SimError;
    pub use crate::validate::{validate_layer, ValidationReport};
    pub use crate::zcip::ZeroColumnIndexParser;
}
