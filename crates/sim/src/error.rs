//! Error type of the cycle-level simulator.
//!
//! Written by hand rather than with `thiserror` because the build
//! environment is offline; the shape matches what `#[derive(Error)]` would
//! generate.

use bitwave_core::error::CoreError;
use bitwave_tensor::TensorError;
use std::fmt;

/// Errors produced by the simulator and its validation harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An underlying tensor (shape) error.
    Tensor(
        /// The propagated tensor error.
        TensorError,
    ),
    /// An underlying grouping/compression error.
    Core(
        /// The propagated core error.
        CoreError,
    ),
    /// The bit-column-serial result diverged from the Int8 reference kernel —
    /// a simulator defect surfaced by a `*_verified` run.
    ReferenceMismatch {
        /// Index of the first diverging output element.
        index: usize,
        /// The simulated value at that index.
        simulated: i32,
        /// The reference value at that index.
        reference: i32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Tensor(e) => write!(f, "tensor error: {e}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::ReferenceMismatch {
                index,
                simulated,
                reference,
            } => write!(
                f,
                "simulated output[{index}] = {simulated} diverged from the Int8 reference {reference}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Tensor(e) => Some(e),
            SimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SimError {
    fn from(e: TensorError) -> Self {
        SimError::Tensor(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

/// Returns `Ok(())` when `simulated == reference`, or the first divergence as
/// a [`SimError::ReferenceMismatch`].
pub(crate) fn check_reference(simulated: &[i32], reference: &[i32]) -> Result<(), SimError> {
    if simulated.len() != reference.len() {
        return Err(SimError::ReferenceMismatch {
            index: simulated.len().min(reference.len()),
            simulated: 0,
            reference: 0,
        });
    }
    for (index, (&s, &r)) in simulated.iter().zip(reference).enumerate() {
        if s != r {
            return Err(SimError::ReferenceMismatch {
                index,
                simulated: s,
                reference: r,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SimError::from(TensorError::Empty);
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = SimError::from(CoreError::UnsupportedRank(3));
        assert!(e.to_string().contains("core error"));
        let e = SimError::ReferenceMismatch {
            index: 4,
            simulated: -1,
            reference: 2,
        };
        assert!(e.to_string().contains("output[4]"));
        assert!(e.source().is_none());
    }

    #[test]
    fn reference_check_finds_first_divergence() {
        assert!(check_reference(&[1, 2, 3], &[1, 2, 3]).is_ok());
        let err = check_reference(&[1, 9, 3], &[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            SimError::ReferenceMismatch {
                index: 1,
                simulated: 9,
                reference: 2
            }
        );
        assert!(check_reference(&[1], &[1, 2]).is_err());
    }
}
