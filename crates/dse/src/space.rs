//! Candidate enumeration: the mapping space searched per layer.
//!
//! A candidate is a **spatial unrolling** (a factorization of the layer's
//! loop dimensions over the PE array, within the accelerator's lane budget)
//! combined with a **temporal mapping** (a tiling loop order and a tile-size
//! factor).  The enumeration covers:
//!
//! * every `Cu × OXu × Ku` power-of-two factorization whose parallelism
//!   lands within `[budget / min_fill, budget]` of the accelerator's peak
//!   lane count — the shape class of Table I's SU1–SU6 at a much finer
//!   granularity than the hardware's fixed menu;
//! * for depthwise layers, `Gu × OXu` channel-parallel factorizations (the
//!   shape class of the dedicated SU7);
//! * the accelerator's own SU set (so the search can never do worse than
//!   the Fig. 9 heuristic that picks from it);
//! * both tiling orders and every configured tile-size factor for each
//!   spatial shape.  Dominated tilings are evaluated and rejected by the
//!   Pareto prune rather than skipped a priori.

use bitwave_accel::spec::AcceleratorSpec;
use bitwave_core::digest::Digest;
use bitwave_dataflow::activity::{TemporalMapping, TilingOrder};
use bitwave_dataflow::su::{SpatialUnrolling, SuSet};
use bitwave_dnn::layer::LayerSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Placeholder `SpatialUnrolling::name` of generated candidates; the
/// human-readable shape lives in [`Candidate::label`].
pub const GENERATED_SU_NAME: &str = "DSE";

/// Configuration of the enumerated space.  Part of the memoization key: two
/// searches agree only if they explored the same space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Lowest admitted parallelism as a fraction of the accelerator's peak
    /// lane count (shapes below it waste the array and only widen the
    /// space).
    pub min_fill: f64,
    /// Tile-size factors enumerated per spatial shape (1 = the natural,
    /// capacity-forced tiling).
    pub tile_factors: Vec<usize>,
    /// Also enumerate the accelerator's own SU set (guarantees the searched
    /// winner is never worse than the heuristic pick).
    pub include_su_set: bool,
    /// Cap on the number of Pareto-front entries retained per layer (the
    /// full front size is still reported).
    pub max_front: usize,
    /// Overrides the lane budget (defaults to the SU set's peak
    /// parallelism).
    pub max_parallelism: Option<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            min_fill: 0.125,
            tile_factors: vec![1, 2, 4],
            include_su_set: true,
            max_front: 16,
            max_parallelism: None,
        }
    }
}

/// One enumerated mapping candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The spatial unrolling.
    pub su: SpatialUnrolling,
    /// Human-readable shape descriptor (`"SU1"` for set members,
    /// `"DSE[C8 X16 K32]"` for generated factorizations).
    pub label: String,
    /// The explicit temporal mapping.
    pub temporal: TemporalMapping,
}

/// Everything [`SearchSpace::enumerate`] depends on.  The layer enters only
/// through its depthwise-ness (the walk is over the *lane budget*, not the
/// layer's extents), so every non-depthwise layer of every model shares one
/// cached enumeration per `(space, SU menu, budget)`.
#[derive(Serialize)]
struct SpaceKey {
    space: SearchSpace,
    su_set: SuSet,
    budget: usize,
    depthwise: bool,
}

/// Process-wide cache of enumerated candidate spaces.  Bounded: distinct
/// keys beyond the cap fall back to uncached enumeration rather than
/// evicting (sweeps cycle through a small menu of SU families).
static SPACE_CACHE: OnceLock<Mutex<HashMap<String, Arc<Vec<Candidate>>>>> = OnceLock::new();
static SPACE_HITS: AtomicU64 = AtomicU64::new(0);
const SPACE_CACHE_CAP: usize = 512;

/// Number of times an enumerated mapping space was served from the
/// process-wide cache instead of being re-walked (the
/// `bitwave_sweep_space_reuse_total` metric).
pub fn space_reuse_total() -> u64 {
    SPACE_HITS.load(Ordering::Relaxed)
}

/// Power-of-two values `1, 2, 4, … ≤ cap`.
fn powers_of_two(cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut v = 1usize;
    while v <= cap {
        out.push(v);
        match v.checked_mul(2) {
            Some(next) => v = next,
            None => break,
        }
    }
    out
}

impl SearchSpace {
    /// The lane budget for an accelerator.
    pub fn budget(&self, accel: &AcceleratorSpec) -> usize {
        self.max_parallelism
            .unwrap_or_else(|| accel.su_set.peak_parallelism())
    }

    /// Enumerates the candidate mappings for `layer` on `accel`, in a
    /// deterministic order: SU-set seeds first, then generated `C×OX×K`
    /// factorizations (ascending `Cu`, `OXu`, `Ku`), then — for depthwise
    /// layers — generated `G×OX` factorizations; each spatial shape is
    /// crossed with both tiling orders and every tile factor.
    pub fn enumerate(&self, accel: &AcceleratorSpec, layer: &LayerSpec) -> Vec<Candidate> {
        let budget = self.budget(accel);
        let mut spatial: Vec<(SpatialUnrolling, String)> = Vec::new();
        if self.include_su_set {
            for su in &accel.su_set.options {
                spatial.push((*su, su.name.to_string()));
            }
        }
        if budget > 0 {
            let floor = ((budget as f64 * self.min_fill).ceil() as usize).max(1);
            let options = powers_of_two(budget);
            for &c in &options {
                for &ox in &options {
                    if c * ox > budget {
                        break;
                    }
                    for &k in &options {
                        let lanes = c * ox * k;
                        if lanes > budget {
                            break;
                        }
                        if lanes < floor {
                            continue;
                        }
                        spatial.push((
                            SpatialUnrolling {
                                name: GENERATED_SU_NAME,
                                c,
                                k,
                                ox,
                                oy: 1,
                                fx: 1,
                                fy: 1,
                                g: 1,
                            },
                            format!("DSE[C{c} X{ox} K{k}]"),
                        ));
                    }
                }
            }
            if layer.kind.is_depthwise() {
                for &g in &options {
                    if g < 2 {
                        continue;
                    }
                    for &ox in &options {
                        let lanes = g * ox;
                        if lanes > budget {
                            break;
                        }
                        if lanes < floor {
                            continue;
                        }
                        spatial.push((
                            SpatialUnrolling {
                                name: GENERATED_SU_NAME,
                                c: 1,
                                k: 1,
                                ox,
                                oy: 1,
                                fx: 1,
                                fy: 1,
                                g,
                            },
                            format!("DSE[G{g} X{ox}]"),
                        ));
                    }
                }
            }
        }

        let factors: Vec<usize> = if self.tile_factors.is_empty() {
            vec![1]
        } else {
            self.tile_factors.clone()
        };
        let mut out = Vec::with_capacity(spatial.len() * 2 * factors.len());
        for (su, label) in spatial {
            for order in [TilingOrder::WeightOuter, TilingOrder::ActivationOuter] {
                for &tile_factor in &factors {
                    out.push(Candidate {
                        su,
                        label: label.clone(),
                        temporal: TemporalMapping {
                            order,
                            tile_factor: tile_factor.max(1),
                        },
                    });
                }
            }
        }
        out
    }

    /// [`SearchSpace::enumerate`] behind the process-wide space cache: the
    /// `Cu × OXu × Ku` factorization walk runs once per distinct
    /// `(space, SU menu, lane budget, depthwise)` key and every later caller
    /// shares the same `Arc`.  Falls back to an uncached walk if the key
    /// fails to digest or the cache is full.
    pub fn enumerate_shared(
        &self,
        accel: &AcceleratorSpec,
        layer: &LayerSpec,
    ) -> Arc<Vec<Candidate>> {
        let key = SpaceKey {
            space: self.clone(),
            su_set: accel.su_set.clone(),
            budget: self.budget(accel),
            depthwise: layer.kind.is_depthwise(),
        };
        let Ok(digest) = Digest::of_value(&key) else {
            return Arc::new(self.enumerate(accel, layer));
        };
        let hex = digest.to_hex();
        let cache = SPACE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().ok().and_then(|g| g.get(&hex).cloned()) {
            SPACE_HITS.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Enumerate outside the lock; a racing duplicate walk is harmless
        // (both produce the identical deterministic Vec) and rarer than the
        // contention a held-lock walk would cause.
        let computed = Arc::new(self.enumerate(accel, layer));
        if let Ok(mut guard) = cache.lock() {
            if guard.len() < SPACE_CACHE_CAP || guard.contains_key(&hex) {
                // Return the canonical Arc so racing enumerators converge.
                return Arc::clone(guard.entry(hex).or_insert_with(|| Arc::clone(&computed)));
            }
        }
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_accel::spec::BitwaveOptimizations;
    use bitwave_dnn::models::{mobilenet_v2, resnet18};

    fn bitwave() -> AcceleratorSpec {
        AcceleratorSpec::bitwave(BitwaveOptimizations::all())
    }

    #[test]
    fn powers_enumerate_up_to_cap() {
        assert_eq!(powers_of_two(8), vec![1, 2, 4, 8]);
        assert_eq!(powers_of_two(7), vec![1, 2, 4]);
        assert!(powers_of_two(0).is_empty());
    }

    #[test]
    fn candidates_respect_the_lane_budget_and_floor() {
        let space = SearchSpace::default();
        let net = resnet18();
        let accel = bitwave();
        let budget = space.budget(&accel);
        assert_eq!(budget, 4096);
        let candidates = space.enumerate(&accel, &net.layers[0]);
        assert!(!candidates.is_empty());
        let floor = (budget as f64 * space.min_fill).ceil() as usize;
        for cand in &candidates {
            assert!(cand.su.parallelism() <= budget, "{}", cand.label);
            if cand.su.name == GENERATED_SU_NAME {
                assert!(cand.su.parallelism() >= floor, "{}", cand.label);
            }
        }
        // The accelerator's own SUs seed the space (both orders, all tiles).
        let su1_seeds = candidates.iter().filter(|c| c.label == "SU1").count();
        assert_eq!(su1_seeds, 2 * space.tile_factors.len());
    }

    #[test]
    fn enumeration_is_deterministic() {
        let space = SearchSpace::default();
        let net = resnet18();
        let accel = bitwave();
        let a = space.enumerate(&accel, &net.layers[0]);
        let b = space.enumerate(&accel, &net.layers[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn depthwise_layers_get_group_parallel_candidates() {
        let space = SearchSpace::default();
        let net = mobilenet_v2();
        let accel = bitwave();
        let dw = net.layers.iter().find(|l| l.kind.is_depthwise()).unwrap();
        let conv = net.layers.iter().find(|l| !l.kind.is_depthwise()).unwrap();
        let dw_cands = space.enumerate(&accel, dw);
        assert!(dw_cands.iter().any(|c| c.su.g > 1));
        let conv_cands = space.enumerate(&accel, conv);
        assert!(conv_cands
            .iter()
            .all(|c| c.su.g <= 1 || c.su.name != GENERATED_SU_NAME));
    }

    #[test]
    fn shared_enumeration_reuses_one_arc_across_shape_siblings() {
        let space = SearchSpace::default();
        let net = resnet18();
        let accel = bitwave();
        // Warm the process-wide cache, then two differently shaped (but both
        // non-depthwise) layers must share one Arc'd enumeration.
        let _warm = space.enumerate_shared(&accel, &net.layers[0]);
        let before = space_reuse_total();
        let a = space.enumerate_shared(&accel, &net.layers[0]);
        let b = space.enumerate_shared(&accel, &net.layers[3]);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(space_reuse_total() >= before + 2);
        assert_eq!(*a, space.enumerate(&accel, &net.layers[0]));
    }

    #[test]
    fn empty_tile_factors_fall_back_to_natural_tiling() {
        let space = SearchSpace {
            tile_factors: Vec::new(),
            ..SearchSpace::default()
        };
        let net = resnet18();
        let candidates = space.enumerate(&bitwave(), &net.layers[0]);
        assert!(candidates.iter().all(|c| c.temporal.tile_factor == 1));
    }
}
