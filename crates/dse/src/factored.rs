//! Factored layer search: the hardware-invariant compute part of every
//! candidate evaluated **once**, then cheaply re-priced per memory/DRAM
//! configuration.
//!
//! Sweep candidates that differ only along the SRAM-size / DRAM-bandwidth
//! axes share identical compute-side cycles and compute energy
//! ([`bitwave_accel::FactoredLayerCost`]).  This module lifts that split to
//! the network-search level: [`factor_network`] walks a network once per
//! `(lanes, SU menu, bandwidth, bit-class)` group — enumerating candidates
//! via the shared space cache and factoring each one — and the returned
//! [`FactoredNetworkSearch`] re-prices the whole portfolio entry against
//! each concrete `(SRAM sizes, DRAM axes)` point in a fraction of the full
//! evaluation time.  Winner and front selection run through the exact same
//! [`crate::search`] code path, so a re-priced
//! [`NetworkSearch`] is **bit-identical** (and byte-identical once
//! serialized) to `DseEngine::search_network_sequential` over the same
//! inputs.

use crate::cost::{EvaluatedMapping, MappingCost};
use crate::error::{DseError, Result};
use crate::search::{
    layer_search_key, select_from_objectives, LayerSearchResult, NetworkSearch, SearchedLayer,
};
use crate::space::SearchSpace;
use bitwave_accel::spec::AcceleratorSpec;
use bitwave_accel::{
    factor_layer_with_mapping, EnergyModel, FactoredLayerCost, LayerSparsityProfile,
};
use bitwave_core::digest::Digest;
use bitwave_dataflow::activity::TemporalMapping;
use bitwave_dataflow::dram::DramSpec;
use bitwave_dataflow::mapping::{select_spatial_unrolling, MappingDecision};
use bitwave_dataflow::su::SpatialUnrolling;
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dnn::layer::{LayerKind, LayerSpec, LoopDims};
use bitwave_dnn::models::NetworkSpec;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static REPRICED: AtomicU64 = AtomicU64::new(0);

/// Cap on per-shape priced-cost memo entries (distinct memory/DRAM
/// configurations seen by one factored shape); far above any real sweep's
/// memory sub-grid, it only bounds adversarial churn.
const PRICED_CACHE_CAP: usize = 128;

/// Number of layer searches answered by re-pricing an already-factored
/// compute part instead of a full per-candidate evaluation (the
/// `bitwave_sweep_factored_repriced_total` metric).
pub fn factored_repriced_total() -> u64 {
    REPRICED.load(Ordering::Relaxed)
}

/// One mapping (a candidate or the heuristic baseline) with its
/// memory-invariant compute part already evaluated.
#[derive(Debug, Clone)]
pub struct FactoredMapping {
    label: String,
    su: SpatialUnrolling,
    temporal: Option<TemporalMapping>,
    utilization: f64,
    effective_macs_per_cycle: f64,
    factored: FactoredLayerCost,
}

impl FactoredMapping {
    /// Factors `decision` for `layer`: everything independent of the memory
    /// hierarchy and the DRAM axes is computed here, once.
    pub fn of_decision(
        spec: &AcceleratorSpec,
        layer: &LayerSpec,
        profile: &LayerSparsityProfile,
        energy: &EnergyModel,
        decision: &MappingDecision,
    ) -> Self {
        Self {
            label: decision.label.clone(),
            su: decision.su,
            temporal: decision.temporal,
            utilization: decision.utilization,
            effective_macs_per_cycle: decision.effective_macs_per_cycle,
            factored: factor_layer_with_mapping(spec, layer, decision, profile, energy),
        }
    }

    /// The cheap per-point half: prices the mapping against a concrete
    /// memory hierarchy and the DRAM axes of `spec`.  Bit-for-bit equal to
    /// [`crate::cost::evaluate_decision`]'s cost over the same inputs.
    pub fn reprice(
        &self,
        spec: &AcceleratorSpec,
        memory: &MemoryHierarchy,
        energy: &EnergyModel,
    ) -> MappingCost {
        let repriced = self.factored.reprice(spec, memory, energy);
        let energy_pj = repriced.energy.total_pj();
        MappingCost {
            compute_cycles: repriced.compute_cycles,
            dram_cycles: repriced.dram_cycles,
            total_cycles: repriced.total_cycles,
            energy_pj,
            edp: repriced.total_cycles * energy_pj,
        }
    }

    fn evaluated(&self, cost: MappingCost) -> EvaluatedMapping {
        EvaluatedMapping {
            label: self.label.clone(),
            su: self.su,
            temporal: self.temporal,
            utilization: self.utilization,
            effective_macs_per_cycle: self.effective_macs_per_cycle,
            cost,
        }
    }
}

/// The exact inputs the priced selection reads beyond the factored compute
/// part: re-pricing ignores every other accelerator field (sync
/// granularity, menus, sparsity flags live in the compute part), so points
/// that differ only in those share one priced selection.
#[derive(Serialize)]
struct PriceKey {
    memory: MemoryHierarchy,
    energy: EnergyModel,
    dram: DramSpec,
    dram_bandwidth_bits: usize,
    space: SearchSpace,
}

/// One memory configuration's fully priced selection for a whole shape:
/// every candidate repriced, the winner/front Pareto selection run, and
/// the survivors materialised.  Everything here is invariant across sweep
/// points sharing the [`PriceKey`], so the per-point residual is just the
/// memo-key digest and a few clones.
#[derive(Debug)]
struct PricedCosts {
    heuristic: EvaluatedMapping,
    winner: EvaluatedMapping,
    front: Vec<EvaluatedMapping>,
    front_total: usize,
}

/// One distinct layer shape with its heuristic baseline and every
/// enumerated candidate factored.
#[derive(Debug)]
pub struct FactoredLayerSearch {
    dims: LoopDims,
    kind: LayerKind,
    profile_hex: String,
    heuristic: FactoredMapping,
    candidates: Vec<FactoredMapping>,
    /// Priced-cost memo keyed by the [`PriceKey`] digest: sweep points that
    /// differ only in re-pricing-invariant axes (e.g. sync granularity)
    /// share one repriced vector per memory configuration.
    priced: Mutex<HashMap<String, Arc<PricedCosts>>>,
}

impl FactoredLayerSearch {
    /// Prices every mapping of this shape against one memory/DRAM
    /// configuration and runs the winner/front Pareto selection, memoized
    /// per [`PriceKey`].  Falls back to an uncached computation if the key
    /// fails to digest (practically unreachable).
    fn priced(
        &self,
        accel: &AcceleratorSpec,
        memory: &MemoryHierarchy,
        energy: &EnergyModel,
        space: &SearchSpace,
    ) -> Arc<PricedCosts> {
        let compute = || {
            let costs: Vec<MappingCost> = self
                .candidates
                .iter()
                .map(|m| m.reprice(accel, memory, energy))
                .collect();
            let objectives: Vec<[f64; 4]> = costs
                .iter()
                .zip(&self.candidates)
                .map(|(c, m)| [c.total_cycles, c.energy_pj, c.edp, m.utilization])
                .collect();
            let (winner, front_idx, front_total) =
                select_from_objectives(&objectives, space.max_front);
            // Only the winner and the capped front are materialised into
            // full `EvaluatedMapping`s — the bulk never clone.
            Arc::new(PricedCosts {
                heuristic: self
                    .heuristic
                    .evaluated(self.heuristic.reprice(accel, memory, energy)),
                winner: self.candidates[winner].evaluated(costs[winner]),
                front: front_idx
                    .into_iter()
                    .map(|i| self.candidates[i].evaluated(costs[i]))
                    .collect(),
                front_total,
            })
        };
        let Ok(key) = Digest::of_value(&PriceKey {
            memory: *memory,
            energy: *energy,
            dram: accel.dram,
            dram_bandwidth_bits: accel.dram_bandwidth_bits,
            space: space.clone(),
        }) else {
            return compute();
        };
        let hex = key.to_hex();
        if let Some(hit) = self.priced.lock().ok().and_then(|g| g.get(&hex).cloned()) {
            return hit;
        }
        let computed = compute();
        match self.priced.lock() {
            Ok(mut guard) if guard.len() < PRICED_CACHE_CAP || guard.contains_key(&hex) => {
                Arc::clone(guard.entry(hex).or_insert_with(|| Arc::clone(&computed)))
            }
            _ => computed,
        }
    }

    /// Re-prices every candidate and re-runs the winner/front selection —
    /// through the same code path as the memoized engine, so the outcome
    /// (including the memoization key recorded in the result) is
    /// bit-identical to a full [`crate::DseEngine::search_layer`].
    ///
    /// # Errors
    ///
    /// [`DseError::Core`] when the memo key fails to digest.
    pub fn reprice(
        &self,
        accel: &AcceleratorSpec,
        memory: &MemoryHierarchy,
        energy: &EnergyModel,
        space: &SearchSpace,
    ) -> Result<(EvaluatedMapping, LayerSearchResult)> {
        let key = layer_search_key(
            accel,
            self.dims,
            self.kind,
            self.profile_hex.clone(),
            memory,
            energy,
            space,
        )?;
        let priced = self.priced(accel, memory, energy, space);
        REPRICED.fetch_add(1, Ordering::Relaxed);
        Ok((
            priced.heuristic.clone(),
            LayerSearchResult {
                key: key.to_hex(),
                candidates: self.candidates.len(),
                winner: priced.winner.clone(),
                front: priced.front.clone(),
                front_total: priced.front_total,
            },
        ))
    }
}

/// A whole network's search space, factored: each distinct
/// `(dims, kind, profile)` shape holds its factored candidates once and
/// every layer of that shape shares them.
#[derive(Debug)]
pub struct FactoredNetworkSearch {
    /// `(layer name, index into distinct)` in execution order.
    layers: Vec<(String, usize)>,
    distinct: Vec<FactoredLayerSearch>,
}

impl FactoredNetworkSearch {
    /// Number of distinct layer shapes held (the factoring workload).
    pub fn distinct_shapes(&self) -> usize {
        self.distinct.len()
    }

    /// Re-prices every distinct shape once against `(memory, DRAM axes)`
    /// and assembles the aggregated [`NetworkSearch`] — bit-identical to
    /// [`crate::DseEngine::search_network_sequential`] over the same
    /// accelerator, space, memory and energy tables.
    ///
    /// # Errors
    ///
    /// [`DseError::Core`] when a memo key fails to digest.
    pub fn reprice(
        &self,
        accel: &AcceleratorSpec,
        memory: &MemoryHierarchy,
        energy: &EnergyModel,
        space: &SearchSpace,
    ) -> Result<NetworkSearch> {
        let priced: Vec<(EvaluatedMapping, LayerSearchResult)> = self
            .distinct
            .iter()
            .map(|d| d.reprice(accel, memory, energy, space))
            .collect::<Result<_>>()?;
        let layers: Vec<SearchedLayer> = self
            .layers
            .iter()
            .map(|(name, i)| {
                let (heuristic, search) = &priced[*i];
                SearchedLayer {
                    layer: name.clone(),
                    heuristic: heuristic.clone(),
                    search: search.clone(),
                }
            })
            .collect();
        Ok(NetworkSearch::aggregate(accel.label.clone(), layers))
    }
}

/// Factors a whole network for `accel`: per distinct layer shape, the
/// heuristic baseline and every candidate from the shared space cache get
/// their compute parts evaluated once.  The expensive half of a sweep
/// point's evaluation — reusable across every point that shares this
/// accelerator's compute-side configuration.
///
/// # Errors
///
/// [`DseError::MisalignedProfiles`] unless `profiles` aligns with
/// `network.layers`; otherwise the first per-layer error, in the same order
/// the memoized engine reports them ([`DseError::Mapping`] from the
/// heuristic pick, [`DseError::Core`] from the profile digest,
/// [`DseError::EmptySpace`] from an empty enumeration).
pub fn factor_network(
    accel: &AcceleratorSpec,
    network: &NetworkSpec,
    profiles: &[LayerSparsityProfile],
    energy: &EnergyModel,
    space: &SearchSpace,
) -> Result<FactoredNetworkSearch> {
    if network.layers.len() != profiles.len() {
        return Err(DseError::MisalignedProfiles {
            layers: network.layers.len(),
            profiles: profiles.len(),
        });
    }
    let mut layers = Vec::with_capacity(network.layers.len());
    let mut distinct: Vec<FactoredLayerSearch> = Vec::new();
    let mut index_of: HashMap<String, usize> = HashMap::new();
    for (layer, profile) in network.layers.iter().zip(profiles) {
        // Same error order as the memoized engine's `search_one`: the
        // heuristic SU pick (which validates the layer dims) comes first.
        let decision = select_spatial_unrolling(layer, &accel.su_set)?;
        let profile_hex = Digest::of_value(profile)?.to_hex();
        let dedup = format!("{:?}|{:?}|{profile_hex}", layer.dims, layer.kind);
        let slot = match index_of.get(&dedup) {
            Some(&i) => i,
            None => {
                let candidates = space.enumerate_shared(accel, layer);
                if candidates.is_empty() {
                    return Err(DseError::EmptySpace {
                        layer: layer.name.clone(),
                    });
                }
                let heuristic =
                    FactoredMapping::of_decision(accel, layer, profile, energy, &decision);
                let factored: Vec<FactoredMapping> = candidates
                    .iter()
                    .map(|c| {
                        // Mirrors `evaluate_candidate`: the layer name stays
                        // empty so identically shaped layers share the slot.
                        let utilization = c.su.utilization_for(layer);
                        let effective = c.su.parallelism() as f64 * utilization;
                        let d = MappingDecision {
                            layer: String::new(),
                            su: c.su,
                            label: c.label.clone(),
                            temporal: Some(c.temporal),
                            utilization,
                            effective_macs_per_cycle: effective,
                        };
                        FactoredMapping::of_decision(accel, layer, profile, energy, &d)
                    })
                    .collect();
                let i = distinct.len();
                distinct.push(FactoredLayerSearch {
                    dims: layer.dims,
                    kind: layer.kind,
                    profile_hex,
                    heuristic,
                    candidates: factored,
                    priced: Mutex::new(HashMap::new()),
                });
                index_of.insert(dedup, i);
                i
            }
        };
        layers.push((layer.name.clone(), slot));
    }
    Ok(FactoredNetworkSearch { layers, distinct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DseEngine;
    use bitwave_accel::spec::BitwaveOptimizations;
    use bitwave_core::group::GroupSize;
    use bitwave_dnn::models::resnet18;
    use bitwave_dnn::weights::generate_layer_sample;

    fn profiles_for(net: &NetworkSpec) -> Vec<LayerSparsityProfile> {
        net.layers
            .iter()
            .map(|l| {
                let w = generate_layer_sample(l, 11, 4_000);
                LayerSparsityProfile::from_weights(
                    &w,
                    l.expected_activation_sparsity(),
                    GroupSize::G16,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn reprice_reproduces_the_full_search_byte_for_byte() {
        let mut net = resnet18();
        net.layers.truncate(6);
        let profiles = profiles_for(&net);
        let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let energy = EnergyModel::finfet_16nm();
        let space = SearchSpace::default();
        let factored = factor_network(&accel, &net, &profiles, &energy, &space).unwrap();
        assert!(factored.distinct_shapes() <= net.layers.len());
        // Two memory configurations spanning the fits/does-not-fit regimes
        // share one factoring.
        for memory in [
            MemoryHierarchy::bitwave_default(),
            MemoryHierarchy {
                weight_sram_bytes: 16 * 1024,
                activation_sram_bytes: 16 * 1024,
                ..MemoryHierarchy::bitwave_default()
            },
        ] {
            let engine = DseEngine::new(memory, energy).with_space(space.clone());
            let full = engine
                .search_network_sequential(&accel, &net, &profiles)
                .unwrap();
            let repriced = factored.reprice(&accel, &memory, &energy, &space).unwrap();
            assert_eq!(repriced, full);
            assert_eq!(
                serde_json::to_string(&repriced).unwrap(),
                serde_json::to_string(&full).unwrap(),
                "factored reprice must serialize byte-identically"
            );
        }
        assert!(factored_repriced_total() >= 2);
    }

    #[test]
    fn misaligned_profiles_are_the_same_typed_error() {
        let net = resnet18();
        let err = factor_network(
            &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            &net,
            &[],
            &EnergyModel::finfet_16nm(),
            &SearchSpace::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DseError::MisalignedProfiles { .. }));
    }
}
