//! Error type of the design-space exploration engine.
//!
//! Written by hand rather than with `thiserror` because the build
//! environment is offline; the shape matches what `#[derive(Error)]` would
//! generate.

use bitwave_core::error::CoreError;
use bitwave_dataflow::mapping::MappingError;
use bitwave_sim::error::SimError;
use std::fmt;

/// Errors produced while exploring a layer's mapping space.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// The underlying mapping substrate rejected the request (empty SU set,
    /// degenerate layer).
    Mapping(
        /// The propagated mapping error.
        MappingError,
    ),
    /// A memoization key failed to digest (serialization failure).
    Core(
        /// The propagated core error.
        CoreError,
    ),
    /// The cycle-level validation engine rejected the workload.
    Sim(
        /// The propagated simulator error.
        SimError,
    ),
    /// The search space produced no candidates for a layer.
    EmptySpace {
        /// The offending layer name.
        layer: String,
    },
    /// `search_network` was handed misaligned layer/profile slices.
    MisalignedProfiles {
        /// Number of layers.
        layers: usize,
        /// Number of profiles.
        profiles: usize,
    },
    /// A mapping cannot be lowered onto the cycle-level BCE engine (e.g.
    /// depthwise `Gu` unrolling or a `Cu` beyond the BCE lane range).
    UnliftableMapping {
        /// Label of the offending mapping.
        label: String,
    },
    /// A memoized search this call coalesced onto failed in its computing
    /// caller (that caller received the original typed error; waiters get
    /// its message).
    Memo {
        /// The computing caller's error message.
        message: String,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Mapping(e) => write!(f, "mapping error: {e}"),
            DseError::Core(e) => write!(f, "core error: {e}"),
            DseError::Sim(e) => write!(f, "simulator error: {e}"),
            DseError::EmptySpace { layer } => {
                write!(f, "search space has no candidates for layer `{layer}`")
            }
            DseError::MisalignedProfiles { layers, profiles } => {
                write!(
                    f,
                    "network search needs one profile per layer ({layers} layers, {profiles} profiles)"
                )
            }
            DseError::UnliftableMapping { label } => {
                write!(
                    f,
                    "mapping `{label}` cannot be lowered onto the cycle-level BCE engine"
                )
            }
            DseError::Memo { message } => {
                write!(f, "coalesced layer search failed: {message}")
            }
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Mapping(e) => Some(e),
            DseError::Core(e) => Some(e),
            DseError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MappingError> for DseError {
    fn from(e: MappingError) -> Self {
        DseError::Mapping(e)
    }
}

impl From<CoreError> for DseError {
    fn from(e: CoreError) -> Self {
        DseError::Core(e)
    }
}

impl From<SimError> for DseError {
    fn from(e: SimError) -> Self {
        DseError::Sim(e)
    }
}

/// The crate-wide result alias.
pub type Result<T> = std::result::Result<T, DseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: DseError = MappingError::EmptySuSet {
            set: "X".to_string(),
        }
        .into();
        assert!(e.to_string().contains("mapping error"));
        assert!(e.source().is_some());
        let e: DseError = CoreError::Serialization {
            message: "boom".to_string(),
        }
        .into();
        assert!(e.to_string().contains("core error"));
        let e = DseError::EmptySpace {
            layer: "conv1".to_string(),
        };
        assert!(e.to_string().contains("conv1"));
        assert!(e.source().is_none());
        let e = DseError::MisalignedProfiles {
            layers: 3,
            profiles: 2,
        };
        assert!(e.to_string().contains("3 layers"));
        let e = DseError::UnliftableMapping {
            label: "SU7".to_string(),
        };
        assert!(e.to_string().contains("SU7"));
    }
}
