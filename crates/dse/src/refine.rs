//! Cycle-level cross-validation of searched mappings.
//!
//! The search itself costs candidates with the analytical Eq. 1–5 model —
//! fast enough for thousands of candidates per layer.  This module closes
//! the loop with `bitwave-sim`'s functional BCE array: a winning
//! `Cu × OXu × Ku` mapping is lowered onto an [`EngineConfig`] and a real
//! weight tensor is streamed through the cycle-level engine, reproducing the
//! paper's model-vs-RTL validation (Section V-B, < 6 % deviation) for
//! *searched* dataflows rather than only the fixed Table I menu.

use crate::cost::EvaluatedMapping;
use crate::error::{DseError, Result};
use bitwave_dataflow::su::SpatialUnrolling;
use bitwave_sim::engine::EngineConfig;
use bitwave_sim::validate::{validate_layer, ValidationReport};
use bitwave_tensor::QuantTensor;

/// Lowers a `Cu × OXu × Ku` spatial unrolling onto the cycle-level BCE
/// array.  Returns `None` for shapes the engine cannot execute: depthwise
/// `Gu` unrolling, kernel-dimension unrolling, `OYu > 1`, or a `Cu` outside
/// the BCE lane range (1..=64, the BCS group-size bound).
pub fn engine_config_for(su: &SpatialUnrolling) -> Option<EngineConfig> {
    if su.g != 1 || su.fx != 1 || su.fy != 1 || su.oy != 1 {
        return None;
    }
    if su.c == 0 || su.c > 64 || su.k == 0 || su.ox == 0 {
        return None;
    }
    Some(EngineConfig {
        ku: su.k,
        mu: su.ox,
        lanes: su.c,
        // Eight kernels share one packed weight segment (Fig. 10) unless the
        // mapping unrolls fewer output channels.
        sync_kernels: su.k.min(8),
    })
}

/// Cross-validates a searched mapping's compute-cycle model against the
/// cycle-level engine on a lowered matrix multiplication (`input: M×C`,
/// `weights: K×C`).
///
/// # Errors
///
/// [`DseError::UnliftableMapping`] when the mapping's shape cannot run on
/// the BCE array, and [`DseError::Sim`] for engine/shape failures.
pub fn validate_mapping(
    input: &QuantTensor,
    weights: &QuantTensor,
    mapping: &EvaluatedMapping,
) -> Result<ValidationReport> {
    let config = engine_config_for(&mapping.su).ok_or_else(|| DseError::UnliftableMapping {
        label: mapping.label.clone(),
    })?;
    Ok(validate_layer(input, weights, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MappingCost;
    use bitwave_dataflow::su::bitwave_su;
    use bitwave_tensor::prelude::*;

    fn mapping(su: SpatialUnrolling) -> EvaluatedMapping {
        EvaluatedMapping {
            label: su.name.to_string(),
            su,
            temporal: None,
            utilization: 1.0,
            effective_macs_per_cycle: su.parallelism() as f64,
            cost: MappingCost {
                compute_cycles: 0.0,
                dram_cycles: 0.0,
                total_cycles: 0.0,
                energy_pj: 0.0,
                edp: 0.0,
            },
        }
    }

    fn tensor(rows: usize, cols: usize, seed: i8) -> QuantTensor {
        let data: Vec<i8> = (0..rows * cols)
            .map(|i| ((i as i64 * 37 + i64::from(seed)) % 17 - 8) as i8)
            .collect();
        QuantTensor::new(Shape::d2(rows, cols), data, QuantParams::unit()).unwrap()
    }

    #[test]
    fn cxk_mappings_lower_onto_the_engine() {
        let config = engine_config_for(&bitwave_su::SU1).unwrap();
        assert_eq!(config.ku, 32);
        assert_eq!(config.mu, 16);
        assert_eq!(config.lanes, 8);
        assert_eq!(config.sync_kernels, 8);
        assert!(engine_config_for(&bitwave_su::SU7).is_none(), "Gu unrolls");
        let wide = SpatialUnrolling::cxk("DSE", 128, 1, 32);
        assert!(engine_config_for(&wide).is_none(), "Cu beyond lane range");
    }

    #[test]
    fn searched_mapping_validates_within_the_paper_bound() {
        // A small lowered matmul: 32 output positions × 16 kernels × 64 ch.
        let input = tensor(32, 64, 1);
        let weights = tensor(16, 64, 5);
        let su = SpatialUnrolling::cxk("DSE", 8, 4, 8);
        let report = validate_mapping(&input, &weights, &mapping(su)).unwrap();
        assert!(report.simulated_cycles > 0);
        assert!(
            report.within_paper_bound(),
            "deviation {:.3} exceeds the 6% bound",
            report.deviation
        );
    }

    #[test]
    fn unliftable_mappings_are_a_typed_error() {
        let input = tensor(8, 64, 2);
        let weights = tensor(8, 64, 3);
        let err = validate_mapping(&input, &weights, &mapping(bitwave_su::SU7)).unwrap_err();
        assert!(matches!(err, DseError::UnliftableMapping { .. }));
    }
}
