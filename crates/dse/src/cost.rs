//! Candidate evaluation on the existing analytical cost stack.
//!
//! Each candidate is costed end to end with the same models the pipeline's
//! simulate stage uses: `bitwave-dataflow` utilisation and activity counts
//! (honouring the candidate's explicit temporal mapping), and the
//! `bitwave-accel` Eq. 1–5 performance/energy model with the layer's
//! sparsity profile.  Because the search and the pipeline share one cost
//! function, a searched winner's predicted cost is exactly what a
//! `MappingPolicy::Searched` pipeline run will report.

use crate::space::Candidate;
use bitwave_accel::model::evaluate_layer_with_mapping;
use bitwave_accel::spec::AcceleratorSpec;
use bitwave_accel::{EnergyModel, LayerSparsityProfile};
use bitwave_dataflow::activity::TemporalMapping;
use bitwave_dataflow::mapping::MappingDecision;
use bitwave_dataflow::su::SpatialUnrolling;
use bitwave_dataflow::MemoryHierarchy;
use serde::{Deserialize, Serialize};

/// The multi-objective cost of one candidate mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Compute cycles (Eq. 2).
    pub compute_cycles: f64,
    /// Non-hideable DRAM cycles.
    pub dram_cycles: f64,
    /// Total latency in cycles (Eq. 5).
    pub total_cycles: f64,
    /// Total energy in picojoules (Eq. 4).
    pub energy_pj: f64,
    /// Energy-delay product (`total_cycles × energy_pj`) — the primary
    /// selection objective.
    pub edp: f64,
}

/// A candidate mapping together with its evaluated cost.  `Deserialize`
/// lets memoized results replay from a `bitwave-store` disk tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedMapping {
    /// Human-readable shape descriptor.
    pub label: String,
    /// The spatial unrolling.
    pub su: SpatialUnrolling,
    /// The explicit temporal mapping; `None` means the activity model's
    /// automatic cheapest-order choice (heuristic decisions).
    pub temporal: Option<TemporalMapping>,
    /// PE-array utilisation (layer-kind aware).
    pub utilization: f64,
    /// Effective MAC lanes per cycle.
    pub effective_macs_per_cycle: f64,
    /// The evaluated cost.
    pub cost: MappingCost,
}

impl EvaluatedMapping {
    /// Materialises the pipeline-facing [`MappingDecision`] for a layer.
    pub fn to_decision(&self, layer: &str) -> MappingDecision {
        MappingDecision {
            layer: layer.to_string(),
            su: self.su,
            label: self.label.clone(),
            temporal: self.temporal,
            utilization: self.utilization,
            effective_macs_per_cycle: self.effective_macs_per_cycle,
        }
    }

    /// The four pruning objectives in [`crate::search`] order:
    /// `[total_cycles, energy_pj, edp, utilization]`.
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.cost.total_cycles,
            self.cost.energy_pj,
            self.cost.edp,
            self.utilization,
        ]
    }
}

/// Evaluates one mapping decision for `layer` on `accel` and wraps the
/// result.  Shared by the candidate loop and the heuristic baseline.
pub fn evaluate_decision(
    accel: &AcceleratorSpec,
    layer: &bitwave_dnn::layer::LayerSpec,
    profile: &LayerSparsityProfile,
    memory: &MemoryHierarchy,
    energy: &EnergyModel,
    decision: &MappingDecision,
) -> EvaluatedMapping {
    let result = evaluate_layer_with_mapping(accel, layer, decision, profile, memory, energy);
    let energy_pj = result.energy.total_pj();
    EvaluatedMapping {
        label: decision.label.clone(),
        su: decision.su,
        temporal: decision.temporal,
        utilization: decision.utilization,
        effective_macs_per_cycle: decision.effective_macs_per_cycle,
        cost: MappingCost {
            compute_cycles: result.compute_cycles,
            dram_cycles: result.dram_cycles,
            total_cycles: result.total_cycles,
            energy_pj,
            edp: result.total_cycles * energy_pj,
        },
    }
}

/// Evaluates one enumerated candidate.
pub fn evaluate_candidate(
    accel: &AcceleratorSpec,
    layer: &bitwave_dnn::layer::LayerSpec,
    profile: &LayerSparsityProfile,
    memory: &MemoryHierarchy,
    energy: &EnergyModel,
    candidate: &Candidate,
) -> EvaluatedMapping {
    let utilization = candidate.su.utilization_for(layer);
    let effective = candidate.su.parallelism() as f64 * utilization;
    let decision = MappingDecision {
        // The memoized result is shared across identically shaped layers of
        // different names; the caller fills the name in via `to_decision`.
        layer: String::new(),
        su: candidate.su,
        label: candidate.label.clone(),
        temporal: Some(candidate.temporal),
        utilization,
        effective_macs_per_cycle: effective,
    };
    evaluate_decision(accel, layer, profile, memory, energy, &decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_accel::spec::BitwaveOptimizations;
    use bitwave_core::group::GroupSize;
    use bitwave_dataflow::activity::TilingOrder;
    use bitwave_dataflow::mapping::select_spatial_unrolling;
    use bitwave_dnn::models::resnet18;
    use bitwave_dnn::weights::generate_layer_sample;

    fn profile_for(layer: &bitwave_dnn::layer::LayerSpec) -> LayerSparsityProfile {
        let w = generate_layer_sample(layer, 7, 8_000);
        LayerSparsityProfile::from_weights(&w, layer.expected_activation_sparsity(), GroupSize::G16)
            .unwrap()
    }

    #[test]
    fn explicit_natural_tiling_matches_the_auto_choice() {
        // Evaluating the heuristic SU with both explicit natural tilings
        // must bracket the automatic choice: the better of the two explicit
        // orders equals the auto-tiled cost.
        let net = resnet18();
        let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let memory = MemoryHierarchy::bitwave_default();
        let energy = EnergyModel::finfet_16nm();
        for layer in net.layers.iter().take(6) {
            let profile = profile_for(layer);
            let auto = {
                let d = select_spatial_unrolling(layer, &accel.su_set).unwrap();
                evaluate_decision(&accel, layer, &profile, &memory, &energy, &d)
            };
            let explicit: Vec<EvaluatedMapping> =
                [TilingOrder::WeightOuter, TilingOrder::ActivationOuter]
                    .into_iter()
                    .map(|order| {
                        let candidate = Candidate {
                            su: auto.su,
                            label: auto.label.clone(),
                            temporal: TemporalMapping {
                                order,
                                tile_factor: 1,
                            },
                        };
                        evaluate_candidate(&accel, layer, &profile, &memory, &energy, &candidate)
                    })
                    .collect();
            let best = explicit
                .iter()
                .map(|e| e.cost.total_cycles)
                .fold(f64::INFINITY, f64::min);
            assert!(
                (best - auto.cost.total_cycles).abs() <= 1e-9 * auto.cost.total_cycles,
                "{}: explicit best {best} vs auto {}",
                layer.name,
                auto.cost.total_cycles
            );
        }
    }

    #[test]
    fn decision_roundtrip_keeps_shape_and_temporal() {
        let net = resnet18();
        let layer = &net.layers[0];
        let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let profile = profile_for(layer);
        let candidate = Candidate {
            su: bitwave_dataflow::su::bitwave_su::SU2,
            label: "SU2".to_string(),
            temporal: TemporalMapping {
                order: TilingOrder::ActivationOuter,
                tile_factor: 2,
            },
        };
        let evaluated = evaluate_candidate(
            &accel,
            layer,
            &profile,
            &MemoryHierarchy::bitwave_default(),
            &EnergyModel::finfet_16nm(),
            &candidate,
        );
        assert!(evaluated.cost.edp > 0.0);
        assert_eq!(
            evaluated.cost.edp,
            evaluated.cost.total_cycles * evaluated.cost.energy_pj
        );
        let decision = evaluated.to_decision("layer0");
        assert_eq!(decision.layer, "layer0");
        assert_eq!(decision.su, candidate.su);
        assert_eq!(decision.temporal, Some(candidate.temporal));
        assert_eq!(decision.label, "SU2");
        assert_eq!(evaluated.objectives()[2], evaluated.cost.edp);
    }
}
