//! # bitwave-dse
//!
//! Layer-adaptive dataflow **design-space exploration** for the BitWave
//! (HPCA 2024) reproduction.
//!
//! BitWave's reported gains rest on more than Bit-Column-Serial compression:
//! the paper selects a spatial unrolling *per layer* with an offline
//! ZigZag-style search (Section IV-C).  The repository's map stage
//! historically approximated that search with the one-shot Fig. 9 heuristic
//! over the fixed Table I menu; this crate implements the search itself:
//!
//! * [`space`] — deterministic enumeration of candidate mappings: power-of-
//!   two `Cu × OXu × Ku` factorizations within the PE-array lane budget
//!   (plus `Gu × OXu` shapes for depthwise layers), crossed with tiling loop
//!   orders and tile-size factors, seeded with the accelerator's own SU set
//!   so the search can never lose to the heuristic.
//! * [`cost`] — candidate evaluation on the **existing** cost stack:
//!   `bitwave-dataflow` utilisation + activity counts and the
//!   `bitwave-accel` Eq. 1–5 performance/energy model driven by the layer's
//!   sparsity profile.  Searched winners therefore predict exactly what a
//!   `MappingPolicy::Searched` pipeline run reports.
//! * [`factored`] — the amortized sweep path: each candidate's
//!   memory-invariant compute part is evaluated once per accelerator
//!   compute configuration ([`factor_network`]) and cheaply re-priced per
//!   `(SRAM sizes, DRAM axes)` point, bit-identical to the full search.
//! * [`search`] — the engine: minimum-EDP winner selection, a generalised
//!   cycles/energy/EDP/utilisation Pareto front (`bitwave_core::pareto`),
//!   and deterministic rayon fan-out (parallel ≡ sequential, bit-identical).
//! * [`memo`] — content-addressed memoization keyed by a
//!   `bitwave_core::digest::Digest` over (accelerator spec, layer shape,
//!   sparsity-profile digest, cost tables, search space), shared process-
//!   wide so identical layers across models and sweeps are searched once.
//!   Backed by the tiered `bitwave-store` substrate: bounded (sharded LRU
//!   with byte accounting, single-flight) and optionally **persistent** —
//!   [`memo::persist_global_cache`] attaches a disk tier so searched
//!   mappings survive restarts and are shared with the serve tier's store
//!   root.
//! * [`refine`] — cycle-level cross-validation of searched mappings on the
//!   `bitwave-sim` BCE array.
//!
//! # Example
//!
//! ```
//! use bitwave_accel::spec::{AcceleratorSpec, BitwaveOptimizations};
//! use bitwave_accel::{EnergyModel, LayerSparsityProfile};
//! use bitwave_core::group::GroupSize;
//! use bitwave_dataflow::MemoryHierarchy;
//! use bitwave_dse::DseEngine;
//!
//! let net = bitwave_dnn::models::resnet18();
//! let layer = net.layer("conv1").unwrap();
//! let weights = bitwave_dnn::weights::generate_layer_sample(layer, 42, 4_000);
//! let profile = LayerSparsityProfile::from_weights(
//!     &weights,
//!     layer.expected_activation_sparsity(),
//!     GroupSize::G16,
//! )
//! .unwrap();
//!
//! let engine = DseEngine::new(MemoryHierarchy::bitwave_default(), EnergyModel::finfet_16nm());
//! let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
//! let heuristic = engine.heuristic_mapping(&accel, layer, &profile).unwrap();
//! let searched = engine.search_layer(&accel, layer, &profile).unwrap();
//! // The enumerated space includes the heuristic's choice, so the searched
//! // winner can only match or beat it on EDP.
//! assert!(searched.winner.cost.edp <= heuristic.cost.edp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod factored;
pub mod memo;
pub mod refine;
pub mod search;
pub mod space;

pub use cost::{EvaluatedMapping, MappingCost};
pub use error::{DseError, Result};
pub use factored::{
    factor_network, factored_repriced_total, FactoredLayerSearch, FactoredMapping,
    FactoredNetworkSearch,
};
pub use memo::{global_cache, persist_global_cache, SearchCache, DEFAULT_MEMO_ENTRIES};
pub use refine::{engine_config_for, validate_mapping};
pub use search::{DseEngine, LayerSearchResult, NetworkSearch, SearchedLayer, DSE_SCHEMA_VERSION};
pub use space::{space_reuse_total, Candidate, SearchSpace};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cost::{EvaluatedMapping, MappingCost};
    pub use crate::error::DseError;
    pub use crate::memo::{global_cache, SearchCache};
    pub use crate::search::{DseEngine, LayerSearchResult, NetworkSearch, SearchedLayer};
    pub use crate::space::SearchSpace;
}
