//! Digest-keyed memoization of per-layer search results, on the shared
//! [`bitwave_store::TieredStore`] substrate.
//!
//! A layer's search outcome depends only on (accelerator spec, layer shape,
//! sparsity profile, cost tables, search space) — not on the layer's name or
//! the model it came from.  Results are therefore memoized under a
//! [`Digest`] of exactly those inputs, so identical layers across models and
//! repeated sweeps are searched **once**: the 9 shape-identical ResNet
//! residual convolutions cost one search, and re-searching an already-seen
//! network is a pure cache walk (gated ≥10× faster than cold in
//! `bench_dse`).
//!
//! Unlike its hand-rolled predecessor the cache is **bounded** (sharded LRU
//! with byte accounting, [`DEFAULT_MEMO_ENTRIES`] entries by default) and
//! optionally **persistent**: attach a store root with
//! [`SearchCache::persist`] / [`persist_global_cache`] and searched mappings
//! survive restarts under `<root>/dse/<digest>`, shared with the serve
//! tier's store root.  Concurrent misses for one key now coalesce onto a
//! single search (single-flight) instead of computing twice.
//!
//! A process-wide [`global_cache`] backs the pipeline's
//! `MappingPolicy::Searched` map stage; engines built for tests or benches
//! can use private caches instead.

use crate::error::{DseError, Result};
use crate::search::LayerSearchResult;
use bitwave_core::digest::Digest;
use bitwave_store::{JsonCodec, StoreConfig, StoreStats, TieredStore};
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Default memory-tier entry bound of a [`SearchCache`].  The old
/// process-wide map grew without bound; a long-running serve process
/// sweeping many models now evicts least-recently-searched layers instead.
pub const DEFAULT_MEMO_ENTRIES: usize = 4096;

/// The disk-tier op namespace (`<root>/dse/<digest>`).
pub const MEMO_OP: &str = "dse";

/// A digest-keyed, bounded, optionally persistent cache of completed layer
/// searches.
#[derive(Debug)]
pub struct SearchCache {
    store: TieredStore<JsonCodec<LayerSearchResult>>,
}

impl Default for SearchCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchCache {
    /// Creates a memory-only cache bounded to [`DEFAULT_MEMO_ENTRIES`].
    pub fn new() -> Self {
        Self::bounded(DEFAULT_MEMO_ENTRIES)
    }

    /// Creates a memory-only cache bounded to `max_entries`.
    pub fn bounded(max_entries: usize) -> Self {
        Self {
            store: TieredStore::memory_only(MEMO_OP, max_entries),
        }
    }

    /// Creates a cache from a full [`StoreConfig`] (persistent when the
    /// config has a root).
    ///
    /// # Errors
    ///
    /// Propagates disk-tier directory creation/scan failures.
    pub fn with_config(config: &StoreConfig) -> io::Result<Self> {
        Ok(Self {
            store: TieredStore::new(MEMO_OP, config)?,
        })
    }

    /// Attaches (or re-roots) a disk tier under `<root>/dse`, so searched
    /// mappings persist across restarts and can be shared with the serve
    /// tier's store root.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures.
    pub fn persist(&self, root: &Path) -> io::Result<()> {
        self.store.persist(root)
    }

    /// True when a disk tier is attached.
    pub fn persistent(&self) -> bool {
        self.store.persistent()
    }

    /// The hit/miss/coalesced/eviction counters.
    pub fn stats(&self) -> &StoreStats {
        self.store.stats()
    }

    /// The underlying tiered store (metrics export).
    pub fn store(&self) -> &TieredStore<JsonCodec<LayerSearchResult>> {
        &self.store
    }

    /// Number of memoized layer searches in the memory tier.
    pub fn len(&self) -> usize {
        self.store.mem_entries()
    }

    /// True when nothing is memoized in the memory tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes of the memory tier (each entry weighs its encoded
    /// JSON size).
    pub fn mem_bytes(&self) -> u64 {
        self.store.mem_bytes()
    }

    /// Drops every memoized entry from the **memory** tier; a disk tier (if
    /// attached) is untouched, so the next lookups replay from disk exactly
    /// as a restarted process would.  The counters keep counting.
    pub fn clear(&self) {
        self.store.clear_memory();
    }

    /// Returns the memoized result for `key`, running `compute` on a miss.
    ///
    /// Lookup order is memory → disk (verified, quarantining corrupt
    /// entries as misses) → `compute`.  Concurrent misses for one key
    /// coalesce onto a single search; every caller observes the same
    /// `Arc`d value afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the computation's error; nothing is cached on failure.
    /// A coalesced waiter that observes the failure receives
    /// [`DseError::Memo`] with the computing caller's message.
    pub fn get_or_compute<F>(&self, key: Digest, compute: F) -> Result<Arc<LayerSearchResult>>
    where
        F: FnOnce() -> Result<LayerSearchResult>,
    {
        self.store
            .get_or_compute(key, compute, |message| DseError::Memo { message })
            .map(|(result, _)| result)
    }
}

/// The process-wide cache used by `MappingPolicy::Searched` pipelines, so
/// identical layers are searched once across models, requests and sweeps.
pub fn global_cache() -> &'static Arc<SearchCache> {
    static GLOBAL: OnceLock<Arc<SearchCache>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(SearchCache::new()))
}

/// Attaches a disk tier to the [`global_cache`] under `<root>/dse`.  The
/// serve tier calls this with its own store root at startup, so the memo
/// cache and the report cache share one persistence root and searched
/// mappings warm-start across process restarts.
///
/// # Errors
///
/// Propagates directory creation/scan failures; the global cache stays on
/// its previous configuration when opening fails.
pub fn persist_global_cache(root: &Path) -> io::Result<()> {
    global_cache().persist(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{EvaluatedMapping, MappingCost};
    use bitwave_dataflow::su::bitwave_su;
    use std::path::PathBuf;

    fn result(tag: &str) -> LayerSearchResult {
        let mapping = EvaluatedMapping {
            label: tag.to_string(),
            su: bitwave_su::SU1,
            temporal: None,
            utilization: 1.0,
            effective_macs_per_cycle: 4096.0,
            cost: MappingCost {
                compute_cycles: 1.0,
                dram_cycles: 1.0,
                total_cycles: 2.0,
                energy_pj: 3.0,
                edp: 6.0,
            },
        };
        LayerSearchResult {
            key: "k".to_string(),
            candidates: 1,
            winner: mapping.clone(),
            front: vec![mapping],
            front_total: 1,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("bitwave-dse-memo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = SearchCache::new();
        let key = Digest::of_bytes(b"layer");
        let a = cache.get_or_compute(key, || Ok(result("a"))).unwrap();
        let b = cache
            .get_or_compute(key, || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_computation_is_not_cached() {
        let cache = SearchCache::new();
        let key = Digest::of_bytes(b"bad");
        let err = cache
            .get_or_compute(key, || {
                Err(crate::error::DseError::EmptySpace {
                    layer: "x".to_string(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, crate::error::DseError::EmptySpace { .. }));
        assert!(cache.is_empty());
        let ok = cache
            .get_or_compute(key, || Ok(result("recovered")))
            .unwrap();
        assert_eq!(ok.winner.label, "recovered");
    }

    #[test]
    fn capacity_is_enforced_with_stable_byte_accounting() {
        // Regression: the process-wide memo cache used to grow without
        // bound.  Inserting past capacity must evict (LRU) and keep the
        // memory-tier byte count equal to the retained entries' encoded
        // sizes — stable across re-insertions of the same keys.
        let cache = SearchCache::bounded(4);
        let entry_bytes = serde_json::to_string(&result("entry-0")).unwrap().len() as u64;
        for i in 0..10 {
            let key = Digest::of_bytes(format!("layer-{i}").as_bytes());
            cache
                .get_or_compute(key, || Ok(result(&format!("entry-{i}"))))
                .unwrap();
        }
        assert!(
            cache.len() <= 4,
            "capacity must bound the cache: {}",
            cache.len()
        );
        assert!(cache.stats().evictions() >= 6);
        assert_eq!(
            cache.mem_bytes(),
            entry_bytes * cache.len() as u64,
            "byte accounting must equal the retained entries' encoded sizes"
        );
        // Hitting the surviving keys must not change the accounting.
        let before = cache.mem_bytes();
        for i in 0..10 {
            let key = Digest::of_bytes(format!("layer-{i}").as_bytes());
            let _ = cache.get_or_compute(key, || Ok(result(&format!("entry-{i}"))));
        }
        assert!(cache.len() <= 4);
        assert_eq!(cache.mem_bytes(), before, "byte count must stay stable");
    }

    #[test]
    fn persisted_results_replay_across_cache_instances() {
        let root = temp_root("replay");
        let config = StoreConfig::default().with_root(&root);
        let key = Digest::of_bytes(b"persistent-layer");
        let cold = {
            let cache = SearchCache::with_config(&config).unwrap();
            assert!(cache.persistent());
            cache.get_or_compute(key, || Ok(result("cold"))).unwrap()
        };
        // A fresh cache over the same root = a restarted process.
        let warm_cache = SearchCache::with_config(&config).unwrap();
        let warm = warm_cache
            .get_or_compute(key, || panic!("must replay from disk"))
            .unwrap();
        assert_eq!(
            *warm, *cold,
            "disk replay must reproduce the result exactly"
        );
        assert_eq!(warm_cache.stats().disk_hits(), 1);
        assert_eq!(warm_cache.stats().misses(), 0);
        assert_eq!(
            serde_json::to_string(&*warm).unwrap(),
            serde_json::to_string(&*cold).unwrap(),
            "replayed results must re-serialize byte-identically"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn global_cache_is_shared() {
        assert!(Arc::ptr_eq(global_cache(), global_cache()));
    }
}
