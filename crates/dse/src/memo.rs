//! Digest-keyed memoization of per-layer search results.
//!
//! A layer's search outcome depends only on (accelerator spec, layer shape,
//! sparsity profile, cost tables, search space) — not on the layer's name or
//! the model it came from.  Results are therefore memoized under a
//! [`Digest`] of exactly those inputs, so identical layers across models and
//! repeated sweeps are searched **once**: the 9 shape-identical ResNet
//! residual convolutions cost one search, and re-searching an already-seen
//! network is a pure hash-map walk (gated ≥10× faster than cold in
//! `bench_dse`).
//!
//! A process-wide [`global_cache`] backs the pipeline's
//! `MappingPolicy::Searched` map stage; engines built for tests or benches
//! can use private caches instead.

use crate::error::Result;
use crate::search::LayerSearchResult;
use bitwave_core::digest::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic hit/miss counters.
#[derive(Debug, Default)]
pub struct MemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoStats {
    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran a search.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A digest-keyed map of completed layer searches.
#[derive(Debug, Default)]
pub struct SearchCache {
    entries: Mutex<HashMap<Digest, Arc<LayerSearchResult>>>,
    stats: MemoStats,
}

impl SearchCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hit/miss counters.
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Number of memoized layer searches.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry (the counters keep counting).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Digest, Arc<LayerSearchResult>>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns the memoized result for `key`, running `compute` on a miss.
    ///
    /// Concurrent misses for one key may both compute; the search is
    /// deterministic, so their results are identical and the first insert
    /// wins — every caller observes the same `Arc`d value afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the computation's error; nothing is cached on failure.
    pub fn get_or_compute<F>(&self, key: Digest, compute: F) -> Result<Arc<LayerSearchResult>>
    where
        F: FnOnce() -> Result<LayerSearchResult>,
    {
        if let Some(hit) = self.lock().get(&key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute()?);
        let mut entries = self.lock();
        Ok(Arc::clone(entries.entry(key).or_insert(computed)))
    }
}

/// The process-wide cache used by `MappingPolicy::Searched` pipelines, so
/// identical layers are searched once across models, requests and sweeps.
pub fn global_cache() -> &'static Arc<SearchCache> {
    static GLOBAL: OnceLock<Arc<SearchCache>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(SearchCache::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{EvaluatedMapping, MappingCost};
    use bitwave_dataflow::su::bitwave_su;

    fn result(tag: &str) -> LayerSearchResult {
        let mapping = EvaluatedMapping {
            label: tag.to_string(),
            su: bitwave_su::SU1,
            temporal: None,
            utilization: 1.0,
            effective_macs_per_cycle: 4096.0,
            cost: MappingCost {
                compute_cycles: 1.0,
                dram_cycles: 1.0,
                total_cycles: 2.0,
                energy_pj: 3.0,
                edp: 6.0,
            },
        };
        LayerSearchResult {
            key: "k".to_string(),
            candidates: 1,
            winner: mapping.clone(),
            front: vec![mapping],
            front_total: 1,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = SearchCache::new();
        let key = Digest::of_bytes(b"layer");
        let a = cache.get_or_compute(key, || Ok(result("a"))).unwrap();
        let b = cache
            .get_or_compute(key, || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_computation_is_not_cached() {
        let cache = SearchCache::new();
        let key = Digest::of_bytes(b"bad");
        let err = cache
            .get_or_compute(key, || {
                Err(crate::error::DseError::EmptySpace {
                    layer: "x".to_string(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, crate::error::DseError::EmptySpace { .. }));
        assert!(cache.is_empty());
        let ok = cache
            .get_or_compute(key, || Ok(result("recovered")))
            .unwrap();
        assert_eq!(ok.winner.label, "recovered");
    }

    #[test]
    fn global_cache_is_shared() {
        assert!(Arc::ptr_eq(global_cache(), global_cache()));
    }
}
