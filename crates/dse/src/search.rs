//! The per-layer search: enumerate → evaluate → Pareto-prune → memoize.

use crate::cost::{evaluate_candidate, evaluate_decision, EvaluatedMapping};
use crate::error::{DseError, Result};
use crate::memo::{global_cache, SearchCache};
use crate::space::SearchSpace;
use bitwave_accel::spec::AcceleratorSpec;
use bitwave_accel::{EnergyModel, LayerSparsityProfile};
use bitwave_core::digest::Digest;
use bitwave_core::pareto::{pareto_front_indices, Direction};
use bitwave_dataflow::mapping::{select_spatial_unrolling, validate_layer_dims};
use bitwave_dataflow::MemoryHierarchy;
use bitwave_dnn::layer::{LayerKind, LayerSpec, LoopDims};
use bitwave_dnn::models::NetworkSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Version stamp mixed into every memoization key.  Bump when the meaning of
/// a key field or the search semantics change, so stale memo entries can
/// never alias new searches.
pub const DSE_SCHEMA_VERSION: u32 = 1;

/// The four pruning objectives: minimise cycles, energy and EDP, maximise
/// utilisation.
pub(crate) const OBJECTIVES: [Direction; 4] = [
    Direction::Minimize,
    Direction::Minimize,
    Direction::Minimize,
    Direction::Maximize,
];

/// Winner + front selection over the `[cycles, energy, edp, utilization]`
/// objective rows — the single implementation both the full per-candidate
/// path and the factored re-pricing path run, so they agree bit-for-bit.
/// Returns `(winner index, capped front indices, full front size)`.
pub(crate) fn select_from_objectives(
    objectives: &[[f64; 4]],
    max_front: usize,
) -> (usize, Vec<usize>, usize) {
    // Winner: minimum EDP, ties towards higher utilisation, then the
    // earlier candidate (SU-set seeds precede generated shapes).
    let mut winner = 0usize;
    for (i, row) in objectives.iter().enumerate().skip(1) {
        let best = &objectives[winner];
        let better = row[2] < best[2] || (row[2] == best[2] && row[3] > best[3]);
        if better {
            winner = i;
        }
    }

    // Multi-objective Pareto front, EDP-sorted, deduplicated, capped.
    let mut front_idx = pareto_front_indices(objectives, &OBJECTIVES);
    let front_total = front_idx.len();
    front_idx.sort_by(|&a, &b| {
        objectives[a][2]
            .partial_cmp(&objectives[b][2])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    front_idx.dedup_by_key(|i| objectives[*i]);
    front_idx.truncate(max_front.max(1));
    (winner, front_idx, front_total)
}

/// Everything a layer's search outcome depends on — and nothing it does not
/// (notably not the layer's *name*, so identically shaped layers share one
/// memo entry across models).  Owned fields because the vendored serde
/// derive does not handle lifetime-generic types.
#[derive(Serialize)]
struct SearchKey {
    schema: u32,
    accelerator: AcceleratorSpec,
    dims: LoopDims,
    kind: LayerKind,
    /// Digest of the layer's sparsity profile (the profile itself is large).
    profile: String,
    memory: MemoryHierarchy,
    energy: EnergyModel,
    space: SearchSpace,
}

/// Builds the memoization digest for one layer's search — shared by
/// [`DseEngine::search_layer`] and the factored sweep path, so both address
/// (and can replay) the exact same store entries.
pub(crate) fn layer_search_key(
    accel: &AcceleratorSpec,
    dims: LoopDims,
    kind: LayerKind,
    profile_hex: String,
    memory: &MemoryHierarchy,
    energy: &EnergyModel,
    space: &SearchSpace,
) -> Result<Digest> {
    Ok(Digest::of_value(&SearchKey {
        schema: DSE_SCHEMA_VERSION,
        accelerator: accel.clone(),
        dims,
        kind,
        profile: profile_hex,
        memory: *memory,
        energy: *energy,
        space: space.clone(),
    })?)
}

/// Outcome of one layer's design-space search.  `Deserialize` lets results
/// persist in (and replay byte-identically from) a `bitwave-store` disk
/// tier across process restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSearchResult {
    /// Hex digest of the memoization key that addresses this result.
    pub key: String,
    /// Number of candidate mappings evaluated.
    pub candidates: usize,
    /// The minimum-EDP mapping (ties broken towards higher utilisation,
    /// then enumeration order — SU-set seeds first, so a tie keeps the
    /// hardware's own named SU).
    pub winner: EvaluatedMapping,
    /// The multi-objective Pareto front (cycles/energy/EDP/utilisation),
    /// sorted by ascending EDP, deduplicated on exact objective ties and
    /// capped at the space's `max_front`.
    pub front: Vec<EvaluatedMapping>,
    /// Full front size before deduplication and capping.
    pub front_total: usize,
}

/// One layer of a network-level search.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchedLayer {
    /// Layer name.
    pub layer: String,
    /// The Fig. 9 heuristic baseline, evaluated on the same cost stack.
    pub heuristic: EvaluatedMapping,
    /// The search outcome.
    pub search: LayerSearchResult,
}

/// Aggregated outcome of searching every layer of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSearch {
    /// Accelerator label.
    pub accelerator: String,
    /// Per-layer outcomes in execution order.
    pub layers: Vec<SearchedLayer>,
    /// Σ total cycles under the heuristic mappings.
    pub heuristic_total_cycles: f64,
    /// Σ energy (pJ) under the heuristic mappings.
    pub heuristic_energy_pj: f64,
    /// Network EDP under the heuristic mappings.
    pub heuristic_edp: f64,
    /// Σ total cycles under the searched winners.
    pub searched_total_cycles: f64,
    /// Σ energy (pJ) under the searched winners.
    pub searched_energy_pj: f64,
    /// Network EDP under the searched winners.
    pub searched_edp: f64,
    /// How many searched winners are pinned at the DRAM side of the
    /// roofline (`dram_cycles == total_cycles`).  Always 0 under an
    /// unconstrained DRAM tier, where the additive Eq. 5 keeps
    /// `dram < total` strictly.
    pub memory_bound_layers: usize,
}

/// Hand-written so `memory_bound_layers` is omitted while 0 — every search
/// response produced under the unconstrained default keeps its exact bytes
/// (the serve tier caches and replays them byte-identically).
impl Serialize for NetworkSearch {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("accelerator".to_string(), self.accelerator.to_value()),
            ("layers".to_string(), self.layers.to_value()),
            (
                "heuristic_total_cycles".to_string(),
                self.heuristic_total_cycles.to_value(),
            ),
            (
                "heuristic_energy_pj".to_string(),
                self.heuristic_energy_pj.to_value(),
            ),
            ("heuristic_edp".to_string(), self.heuristic_edp.to_value()),
            (
                "searched_total_cycles".to_string(),
                self.searched_total_cycles.to_value(),
            ),
            (
                "searched_energy_pj".to_string(),
                self.searched_energy_pj.to_value(),
            ),
            ("searched_edp".to_string(), self.searched_edp.to_value()),
        ];
        if self.memory_bound_layers > 0 {
            fields.push((
                "memory_bound_layers".to_string(),
                self.memory_bound_layers.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl NetworkSearch {
    /// Heuristic EDP over searched EDP (≥ 1 when the search wins).
    ///
    /// Network EDP is the product `(Σ cycles) × (Σ energy)`.  Per-layer
    /// winner selection guarantees every *layer's* EDP is ≤ its heuristic
    /// counterpart, which bounds the per-layer EDP *sum* but not this
    /// product in full generality (a cycles↔energy trade on one layer can
    /// inflate it).  On the benchmark models the gain is comfortably > 1
    /// and `bench_dse` gates it; treat it as an empirical metric, not an
    /// invariant, on arbitrary networks.
    pub fn edp_gain(&self) -> f64 {
        if self.searched_edp > 0.0 {
            self.heuristic_edp / self.searched_edp
        } else {
            1.0
        }
    }

    pub(crate) fn aggregate(accelerator: String, layers: Vec<SearchedLayer>) -> Self {
        let mut h_cycles = 0.0;
        let mut h_energy = 0.0;
        let mut s_cycles = 0.0;
        let mut s_energy = 0.0;
        let mut memory_bound = 0usize;
        for layer in &layers {
            h_cycles += layer.heuristic.cost.total_cycles;
            h_energy += layer.heuristic.cost.energy_pj;
            let winner = &layer.search.winner.cost;
            s_cycles += winner.total_cycles;
            s_energy += winner.energy_pj;
            // Only a constrained roofline can pin the total at the DRAM
            // side; the unconstrained additive model keeps dram < total.
            if winner.total_cycles > 0.0
                && winner.dram_cycles >= winner.total_cycles
                && winner.dram_cycles > winner.compute_cycles
            {
                memory_bound += 1;
            }
        }
        Self {
            accelerator,
            layers,
            heuristic_total_cycles: h_cycles,
            heuristic_energy_pj: h_energy,
            heuristic_edp: h_cycles * h_energy,
            searched_total_cycles: s_cycles,
            searched_energy_pj: s_energy,
            searched_edp: s_cycles * s_energy,
            memory_bound_layers: memory_bound,
        }
    }
}

/// The design-space exploration engine: a search space, the cost tables,
/// and a memoization cache.
#[derive(Debug, Clone)]
pub struct DseEngine {
    space: SearchSpace,
    memory: MemoryHierarchy,
    energy: EnergyModel,
    cache: Arc<SearchCache>,
}

impl DseEngine {
    /// Creates an engine with the default search space and a **private**
    /// cache (tests and benches that must observe cold searches).
    pub fn new(memory: MemoryHierarchy, energy: EnergyModel) -> Self {
        Self {
            space: SearchSpace::default(),
            memory,
            energy,
            cache: Arc::new(SearchCache::new()),
        }
    }

    /// Creates an engine sharing the process-wide [`global_cache`] — the
    /// configuration `MappingPolicy::Searched` pipelines use, so identical
    /// layers are searched once across models and requests.
    pub fn shared(memory: MemoryHierarchy, energy: EnergyModel) -> Self {
        Self::new(memory, energy).with_cache(Arc::clone(global_cache()))
    }

    /// Overrides the search space (builder style).
    pub fn with_space(mut self, space: SearchSpace) -> Self {
        self.space = space;
        self
    }

    /// Shares an explicit cache (builder style).
    pub fn with_cache(mut self, cache: Arc<SearchCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The engine's search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The engine's memoization cache.
    pub fn cache(&self) -> &SearchCache {
        &self.cache
    }

    /// Evaluates the Fig. 9 heuristic choice for `layer` on the same cost
    /// stack the search uses (the baseline the ROADMAP gates compare
    /// against).
    ///
    /// # Errors
    ///
    /// Propagates [`DseError::Mapping`] for an empty SU set or degenerate
    /// layer.
    pub fn heuristic_mapping(
        &self,
        accel: &AcceleratorSpec,
        layer: &LayerSpec,
        profile: &LayerSparsityProfile,
    ) -> Result<EvaluatedMapping> {
        let decision = select_spatial_unrolling(layer, &accel.su_set)?;
        Ok(evaluate_decision(
            accel,
            layer,
            profile,
            &self.memory,
            &self.energy,
            &decision,
        ))
    }

    /// Searches one layer's mapping space, memoized.
    ///
    /// # Errors
    ///
    /// [`DseError::Mapping`] for degenerate layers, [`DseError::Core`] when
    /// the memo key fails to digest, [`DseError::EmptySpace`] when nothing
    /// can be enumerated.
    pub fn search_layer(
        &self,
        accel: &AcceleratorSpec,
        layer: &LayerSpec,
        profile: &LayerSparsityProfile,
    ) -> Result<Arc<LayerSearchResult>> {
        validate_layer_dims(layer)?;
        let key = layer_search_key(
            accel,
            layer.dims,
            layer.kind,
            Digest::of_value(profile)?.to_hex(),
            &self.memory,
            &self.energy,
            &self.space,
        )?;
        self.cache
            .get_or_compute(key, || self.search_uncached(accel, layer, profile, key))
    }

    /// The cold path: enumerate every candidate, evaluate each on the cost
    /// stack, pick the minimum-EDP winner and extract the Pareto front.
    /// Candidates are evaluated sequentially — layer-level parallelism comes
    /// from [`DseEngine::search_network`] (and the pipeline's per-layer
    /// rayon fan-out), which keeps the two levels from oversubscribing.
    fn search_uncached(
        &self,
        accel: &AcceleratorSpec,
        layer: &LayerSpec,
        profile: &LayerSparsityProfile,
        key: Digest,
    ) -> Result<LayerSearchResult> {
        let candidates = self.space.enumerate_shared(accel, layer);
        if candidates.is_empty() {
            return Err(DseError::EmptySpace {
                layer: layer.name.clone(),
            });
        }
        let evaluated: Vec<EvaluatedMapping> = candidates
            .iter()
            .map(|c| evaluate_candidate(accel, layer, profile, &self.memory, &self.energy, c))
            .collect();

        let objectives: Vec<[f64; 4]> =
            evaluated.iter().map(EvaluatedMapping::objectives).collect();
        let (winner, front_idx, front_total) =
            select_from_objectives(&objectives, self.space.max_front);
        let front: Vec<EvaluatedMapping> = front_idx
            .into_iter()
            .map(|i| evaluated[i].clone())
            .collect();

        Ok(LayerSearchResult {
            key: key.to_hex(),
            candidates: evaluated.len(),
            winner: evaluated[winner].clone(),
            front,
            front_total,
        })
    }

    /// Searches every layer of a network with one rayon task per layer.
    /// Deterministic: the vendored rayon preserves index order and each
    /// layer's search is order-independent, so the result is bit-identical
    /// to [`DseEngine::search_network_sequential`].
    ///
    /// # Errors
    ///
    /// [`DseError::MisalignedProfiles`] unless `profiles` aligns with
    /// `spec.layers`; otherwise the first per-layer error.
    pub fn search_network(
        &self,
        accel: &AcceleratorSpec,
        spec: &NetworkSpec,
        profiles: &[LayerSparsityProfile],
    ) -> Result<NetworkSearch> {
        self.check_alignment(spec, profiles)?;
        let items: Vec<(&LayerSpec, &LayerSparsityProfile)> =
            spec.layers.iter().zip(profiles).collect();
        let layers: Vec<SearchedLayer> = items
            .par_iter()
            .map(|&(layer, profile)| self.search_one(accel, layer, profile))
            .collect::<Result<_>>()?;
        Ok(NetworkSearch::aggregate(accel.label.clone(), layers))
    }

    /// Sequential reference of [`DseEngine::search_network`] (property tests
    /// assert bit-identity between the two).
    ///
    /// # Errors
    ///
    /// See [`DseEngine::search_network`].
    pub fn search_network_sequential(
        &self,
        accel: &AcceleratorSpec,
        spec: &NetworkSpec,
        profiles: &[LayerSparsityProfile],
    ) -> Result<NetworkSearch> {
        self.check_alignment(spec, profiles)?;
        let layers: Vec<SearchedLayer> = spec
            .layers
            .iter()
            .zip(profiles)
            .map(|(layer, profile)| self.search_one(accel, layer, profile))
            .collect::<Result<_>>()?;
        Ok(NetworkSearch::aggregate(accel.label.clone(), layers))
    }

    fn search_one(
        &self,
        accel: &AcceleratorSpec,
        layer: &LayerSpec,
        profile: &LayerSparsityProfile,
    ) -> Result<SearchedLayer> {
        let heuristic = self.heuristic_mapping(accel, layer, profile)?;
        let search = self.search_layer(accel, layer, profile)?;
        Ok(SearchedLayer {
            layer: layer.name.clone(),
            heuristic,
            search: (*search).clone(),
        })
    }

    fn check_alignment(&self, spec: &NetworkSpec, profiles: &[LayerSparsityProfile]) -> Result<()> {
        if spec.layers.len() != profiles.len() {
            return Err(DseError::MisalignedProfiles {
                layers: spec.layers.len(),
                profiles: profiles.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitwave_accel::spec::BitwaveOptimizations;
    use bitwave_core::group::GroupSize;
    use bitwave_dnn::models::{mobilenet_v2, resnet18};
    use bitwave_dnn::weights::generate_layer_sample;

    fn bitwave() -> AcceleratorSpec {
        AcceleratorSpec::bitwave(BitwaveOptimizations::all())
    }

    fn engine() -> DseEngine {
        DseEngine::new(
            MemoryHierarchy::bitwave_default(),
            EnergyModel::finfet_16nm(),
        )
    }

    fn profiles_for(net: &NetworkSpec) -> Vec<LayerSparsityProfile> {
        net.layers
            .iter()
            .map(|l| {
                let w = generate_layer_sample(l, 11, 4_000);
                LayerSparsityProfile::from_weights(
                    &w,
                    l.expected_activation_sparsity(),
                    GroupSize::G16,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn searched_winner_never_loses_to_the_heuristic() {
        let net = resnet18();
        let profiles = profiles_for(&net);
        let engine = engine();
        let accel = bitwave();
        for (layer, profile) in net.layers.iter().zip(&profiles) {
            let heuristic = engine.heuristic_mapping(&accel, layer, profile).unwrap();
            let searched = engine.search_layer(&accel, layer, profile).unwrap();
            assert!(
                searched.winner.cost.edp <= heuristic.cost.edp * (1.0 + 1e-12),
                "{}: searched {} vs heuristic {}",
                layer.name,
                searched.winner.cost.edp,
                heuristic.cost.edp
            );
        }
    }

    #[test]
    fn front_is_mutually_non_dominating_and_contains_the_winner_cost() {
        use bitwave_core::pareto::ParetoPointN;
        let net = mobilenet_v2();
        let profiles = profiles_for(&net);
        let engine = engine();
        let accel = bitwave();
        let dw = net
            .layers
            .iter()
            .position(|l| l.kind.is_depthwise())
            .unwrap();
        let result = engine
            .search_layer(&accel, &net.layers[dw], &profiles[dw])
            .unwrap();
        assert!(!result.front.is_empty());
        assert!(result.front_total >= result.front.len());
        assert!(result.candidates > result.front.len());
        let points: Vec<ParetoPointN<4>> = result
            .front
            .iter()
            .map(|m| ParetoPointN::new(m.objectives(), m.label.clone()))
            .collect();
        for a in &points {
            for b in &points {
                assert!(!a.dominates(b, &OBJECTIVES));
            }
        }
        // The winner's EDP is the front's best EDP.
        assert_eq!(result.front[0].cost.edp, result.winner.cost.edp);
        // The front is EDP-sorted.
        assert!(result
            .front
            .windows(2)
            .all(|w| w[0].cost.edp <= w[1].cost.edp));
    }

    #[test]
    fn identical_layers_share_one_memo_entry_across_names_and_models() {
        // The memo key covers the layer *shape* and profile, not the name or
        // the owning model: a renamed but otherwise identical layer must hit.
        let net = resnet18();
        let profiles = profiles_for(&net);
        let engine = engine();
        let accel = bitwave();
        let original = engine
            .search_layer(&accel, &net.layers[5], &profiles[5])
            .unwrap();
        let mut renamed = net.layers[5].clone();
        renamed.name = "other_model.some_layer".to_string();
        let aliased = engine.search_layer(&accel, &renamed, &profiles[5]).unwrap();
        assert!(Arc::ptr_eq(&original, &aliased));
        assert_eq!(engine.cache().len(), 1);
        assert_eq!(engine.cache().stats().hits(), 1);
        assert_eq!(engine.cache().stats().misses(), 1);
    }

    #[test]
    fn re_searching_a_network_is_fully_memoized() {
        let net = resnet18();
        let profiles = profiles_for(&net);
        let engine = engine();
        let accel = bitwave();
        let cold = engine
            .search_network_sequential(&accel, &net, &profiles)
            .unwrap();
        let misses_after_cold = engine.cache().stats().misses();
        let warm = engine
            .search_network_sequential(&accel, &net, &profiles)
            .unwrap();
        assert_eq!(cold, warm, "memoized results must equal cold results");
        assert_eq!(
            engine.cache().stats().misses(),
            misses_after_cold,
            "the warm sweep must not run a single cold search"
        );
        assert!(engine.cache().stats().hits() >= net.layers.len() as u64);
    }

    #[test]
    fn parallel_and_sequential_network_searches_are_identical() {
        let net = resnet18();
        let profiles = profiles_for(&net);
        let engine = engine();
        let accel = bitwave();
        let parallel = engine.search_network(&accel, &net, &profiles).unwrap();
        let sequential = engine
            .search_network_sequential(&accel, &net, &profiles)
            .unwrap();
        assert_eq!(parallel, sequential);
        let a = serde_json::to_string(&parallel).unwrap();
        let b = serde_json::to_string(&sequential).unwrap();
        assert_eq!(a, b, "serialized forms must be byte-identical");
        assert!(parallel.edp_gain() >= 1.0);
    }

    #[test]
    fn misaligned_profiles_are_a_typed_error() {
        let net = resnet18();
        let engine = engine();
        let err = engine
            .search_network_sequential(&bitwave(), &net, &[])
            .unwrap_err();
        assert!(matches!(err, DseError::MisalignedProfiles { .. }));
    }

    #[test]
    fn degenerate_layers_surface_the_mapping_error() {
        let net = resnet18();
        let profiles = profiles_for(&net);
        let mut layer = net.layers[0].clone();
        layer.dims.k = 0;
        let err = engine()
            .search_layer(&bitwave(), &layer, &profiles[0])
            .unwrap_err();
        assert!(matches!(err, DseError::Mapping(_)));
    }
}
