//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Renders the vendored serde crate's [`Value`] tree as JSON (compact and
//! pretty) and parses JSON text back into values.  Only the API surface this
//! repository uses is provided: [`to_string`], [`to_string_pretty`],
//! [`to_value`], [`from_str`] and [`from_value`].

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(out, *v),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
            '[',
            ']',
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let rendered = v.to_string();
        out.push_str(&rendered);
        // Keep floats recognisable as floats on round-trip.
        if !rendered.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's `null` convention.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| Error::new("invalid UTF-8"))?
            .char_indices();
        while let Some((offset, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape {other:?}")));
                    }
                },
                c => out.push(c),
            }
        }
        Err(Error::new("unterminated string"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i32).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("2.0").unwrap();
        assert_eq!(v, 2.0);
        let v: Vec<i8> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
    }

    #[test]
    fn pretty_print_nests() {
        let value = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
            ("b".to_string(), Value::Null),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": null\n}"
        );
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn float_values_stay_floats() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(1.0));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
