//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serde implementation under `vendor/`.  This crate provides the
//! `#[derive(Serialize)]` and `#[derive(Deserialize)]` macros for the
//! simplified value-tree data model defined in the vendored `serde` crate
//! (`Serialize::to_value` / `Deserialize::from_value`).
//!
//! The parser is deliberately small: it supports non-generic structs (named,
//! tuple and unit) and enums whose variants are unit, named-field or tuple
//! variants — exactly the shapes used in this repository.  Generic types are
//! rejected with a compile error.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of a struct body or an enum variant body.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (the simplified `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (the simplified `from_value` form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error literal parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("enum `{name}` has no body")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                *i += 1;
            }
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Parses `name: Type, name: Type, ...` capturing only the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        names.push(name);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(names)
}

/// Skips a type, stopping at a top-level `,` (tracks `<...>` nesting; grouped
/// delimiters arrive as single atomic tokens).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut i = 0usize;
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 && i + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip a possible explicit discriminant, then the separating comma.
        skip_type(&tokens, &mut i);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let mut s = String::from(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in names {
                        s.push_str(&format!(
                            "__fields.push((::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Object(__fields)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::String(::std::string::String::from({variant:?})),\n"
                    )),
                    Fields::Named(field_names) => {
                        let bindings = field_names.join(", ");
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in field_names {
                            inner.push_str(&format!(
                                "__fields.push((::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {bindings} }} => {{\n{inner}\n::serde::Value::Object(vec![(::std::string::String::from({variant:?}), ::serde::Value::Object(__fields))])\n}}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{variant}({}) => ::serde::Value::Object(vec![(::std::string::String::from({variant:?}), {inner})]),\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n{arms}        }}\n    }}\n}}\n"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

fn gen_named_field_inits(type_label: &str, names: &[String], obj_var: &str) -> String {
    let mut s = String::new();
    for f in names {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::__field({obj_var}, {f:?})).map_err(|e| e.at({}))?,\n",
            format_args!("\"{type_label}.{f}\"")
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "if value.is_null() {{ Ok({name}) }} else {{ Err(::serde::Error::custom(\"expected null for unit struct {name}\")) }}"
                ),
                Fields::Named(names) => {
                    let inits = gen_named_field_inits(name, names, "__obj");
                    format!(
                        "let __obj = value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\nOk(Self {{\n{inits}}})"
                    )
                }
                Fields::Tuple(1) => {
                    "Ok(Self(::serde::Deserialize::from_value(value)?))".to_string()
                }
                Fields::Tuple(n) => {
                    let mut inits = String::new();
                    for k in 0..*n {
                        inits.push_str(&format!(
                            "::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                        ));
                    }
                    format!(
                        "let __arr = value.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\nOk(Self(\n{inits}))"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{variant:?} => return Ok({name}::{variant}),\n"));
                        tagged_arms.push_str(&format!("{variant:?} => Ok({name}::{variant}),\n"));
                    }
                    Fields::Named(field_names) => {
                        let inits =
                            gen_named_field_inits(&format!("{name}::{variant}"), field_names, "__obj");
                        tagged_arms.push_str(&format!(
                            "{variant:?} => {{\nlet __obj = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object body for {name}::{variant}\"))?;\nOk({name}::{variant} {{\n{inits}}})\n}}\n"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{variant:?} => Ok({name}::{variant}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut inits = String::new();
                        for k in 0..*n {
                            inits.push_str(&format!(
                                "::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{variant:?} => {{\nlet __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array body for {name}::{variant}\"))?;\nif __arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{variant}\")); }}\nOk({name}::{variant}(\n{inits}))\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        if let Some(__s) = value.as_str() {{\n            match __s {{\n{unit_arms}                _ => return Err(::serde::Error::custom(\"unknown variant of {name}\")),\n            }}\n        }}\n        let (__tag, __inner) = ::serde::__variant_parts(value).ok_or_else(|| ::serde::Error::custom(\"expected externally tagged enum {name}\"))?;\n        match __tag {{\n{tagged_arms}            _ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n        }}\n    }}\n}}\n"
            )
        }
    }
}
