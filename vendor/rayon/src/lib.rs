//! Vendored, dependency-free stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the `par_iter`/`par_iter_mut` subset the repository uses, built on
//! `std::thread::scope`.  Unlike a sequential mock, this implementation
//! genuinely fans work out across cores: the index space is split into one
//! contiguous chunk per worker thread and results are concatenated in order,
//! so `collect()` is deterministic and bit-identical to sequential
//! evaluation regardless of thread count.
//!
//! Differences from upstream rayon: no work stealing (chunking is static),
//! no global thread pool (threads are spawned per call — fine for the
//! coarse-grained, per-layer work in this repository), and only the adapters
//! actually used here (`map`, `flat_map`, `for_each`, `collect`).
//! `RAYON_NUM_THREADS` is honoured like upstream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of worker threads: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(var) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..len` into at most `workers` contiguous, near-equal ranges.
fn partition(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// An order-preserving parallel iterator over an indexable source.
///
/// `eval_range` is the whole contract: evaluate the items of a contiguous
/// index sub-range sequentially.  `drive` fans sub-ranges out across scoped
/// threads and concatenates the per-chunk results in index order.
pub trait ParallelIterator: Sized + Sync {
    /// The item type produced by this iterator.
    type Item: Send;

    /// Number of *base* indices (items before any `flat_map` expansion).
    fn len(&self) -> usize;

    /// True if the base index space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates the given base-index sub-range sequentially, appending the
    /// produced items to `out`.
    fn eval_range(&self, range: Range<usize>, out: &mut Vec<Self::Item>);

    /// Evaluates the whole iterator with worker threads, preserving order.
    fn drive(self) -> Vec<Self::Item> {
        let len = self.len();
        let workers = current_num_threads();
        if workers <= 1 || len <= 1 {
            let mut out = Vec::with_capacity(len);
            self.eval_range(0..len, &mut out);
            return out;
        }
        let this = &self;
        let chunks = partition(len, workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(range.len());
                        this.eval_range(range, &mut out);
                        out
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(len);
            for handle in handles {
                out.extend(handle.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    /// Maps every item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Maps every item to an iterable and flattens the results.
    fn flat_map<F, I>(self, f: F) -> FlatMap<Self, F>
    where
        F: Fn(Self::Item) -> I + Sync + Send,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMap { base: self, f }
    }

    /// Runs `f` on every item (in parallel, order of side effects unspecified).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).drive();
    }

    /// Collects all items, preserving the sequential order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn eval_range(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        out.extend(self.slice[range].iter());
    }
}

/// Map adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval_range(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        let mut inner = Vec::with_capacity(range.len());
        self.base.eval_range(range, &mut inner);
        out.extend(inner.into_iter().map(&self.f));
    }
}

/// FlatMap adapter.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, I> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> I + Sync + Send,
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn eval_range(&self, range: Range<usize>, out: &mut Vec<Self::Item>) {
        let mut inner = Vec::with_capacity(range.len());
        self.base.eval_range(range, &mut inner);
        for item in inner {
            out.extend((self.f)(item));
        }
    }
}

/// Types that offer `par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: Send + 'data;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = Iter<'data, T>;

    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = Iter<'data, T>;

    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Item = &'data T;
    type Iter = Iter<'data, T>;

    fn par_iter(&'data self) -> Iter<'data, T> {
        Iter { slice: self }
    }
}

/// Mutably borrowing parallel iterator over a slice.  Kept separate from
/// [`ParallelIterator`] because exclusive access cannot be expressed through
/// `&self` chunk evaluation; only the `map(...).collect()` shape used in this
/// repository is provided, plus `for_each`.
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IterMut<'a, T> {
    /// Maps every `&mut` item through `f`.
    pub fn map<F, R>(self, f: F) -> MapMut<'a, T, F>
    where
        F: Fn(&mut T) -> R + Sync + Send,
        R: Send,
    {
        MapMut {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every `&mut` item across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync + Send,
    {
        self.map(|item| f(item)).drive();
    }
}

/// Map adapter over a mutable slice.
pub struct MapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F, R> MapMut<'a, T, F>
where
    F: Fn(&mut T) -> R + Sync + Send,
    R: Send,
{
    fn drive(self) -> Vec<R> {
        let len = self.slice.len();
        let workers = current_num_threads();
        let f = &self.f;
        if workers <= 1 || len <= 1 {
            return self.slice.iter_mut().map(f).collect();
        }
        let chunk_size = len.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(len);
            for handle in handles {
                out.extend(handle.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    /// Collects the mapped results, preserving the sequential order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        self.drive().into_iter().collect()
    }
}

/// Types that offer `par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed element type.
    type Elem: Send + 'data;

    /// A parallel iterator over mutably borrowed items.
    fn par_iter_mut(&'data mut self) -> IterMut<'data, Self::Elem>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Elem = T;

    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Elem = T;

    fn par_iter_mut(&'data mut self) -> IterMut<'data, T> {
        IterMut { slice: self }
    }
}

/// The rayon prelude: the traits needed to call `par_iter`/`par_iter_mut`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, (0..1000).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_preserves_order() {
        let input: Vec<usize> = (0..100).collect();
        let expanded: Vec<usize> = input.par_iter().flat_map(|&v| vec![v, v]).collect();
        let expected: Vec<usize> = (0..100).flat_map(|v| [v, v]).collect();
        assert_eq!(expanded, expected);
    }

    #[test]
    fn par_iter_mut_mutates_and_collects_in_order() {
        let mut input: Vec<i32> = (0..257).collect();
        let snapshot: Vec<i32> = input
            .par_iter_mut()
            .map(|v| {
                *v += 1;
                *v
            })
            .collect();
        assert_eq!(snapshot, (1..258).collect::<Vec<_>>());
        assert_eq!(input, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&v| v).collect();
        assert!(out.is_empty());
        let one = [7i32];
        let out: Vec<i32> = one.par_iter().map(|&v| v * 3).collect();
        assert_eq!(out, vec![21]);
    }

    #[test]
    fn partition_covers_range_exactly() {
        for len in [0usize, 1, 2, 7, 8, 9, 1000] {
            for workers in [1usize, 2, 3, 8, 64] {
                let parts = super::partition(len, workers);
                let mut next = 0usize;
                for r in &parts {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }
}
