//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the bench targets use: `Criterion::default()`,
//! `sample_size`, `measurement_time`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros (both the plain and
//! the `name/config/targets` forms).
//!
//! Statistics are intentionally simple — min / mean / max of wall-clock
//! samples — but reported in the same spirit so regressions remain visible.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark; sampling stops early once
    /// the budget is exhausted (at least one sample is always taken).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, after one untimed warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std_black_box(routine());
        let budget_start = Instant::now();
        for done in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
            if done + 1 < self.sample_size && budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<55} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id:<55} time: [{} {} {}]  ({} samples)",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
            self.samples.len(),
        );
    }
}

/// Human-readable duration, criterion style.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group; supports both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("test/trivial", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // one warm-up + up to three samples
        assert!(runs >= 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn measurement_time_stops_sampling_early() {
        let mut c = Criterion::default()
            .sample_size(1_000_000)
            .measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        c.bench_function("test/budget", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(Duration::from_millis(5));
            })
        });
        assert!(runs < 100, "budget should stop sampling, ran {runs}");
    }
}
