//! Vendored, dependency-free stand-in for `rand`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the small API subset the repository uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over `f64` ranges and
//! integer ranges, and `Rng::gen_bool`.  The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for synthetic-data
//! generation and fully deterministic for a given seed (the stream differs
//! from upstream `StdRng`, which is fine: nothing in this repository depends
//! on upstream's exact stream, only on determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// RNGs seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling API used by this repository.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Treating the inclusive end as exclusive loses one representable
        // value — negligible for continuous sampling.
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Standard RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..10_000 {
            let v: i8 = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&v));
            saw_low |= v == -3;
            saw_high |= v == 3;
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn next_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..100_000).map(|_| rng.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
