//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset the test suites use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` inner attribute), `prop_assert!`/
//! `prop_assert_eq!`, `any::<T>()`, `Just`, integer-range strategies,
//! `prop_oneof!` (plain and weighted) and `proptest::collection::vec`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the test
//! name), so failures are reproducible.  Shrinking is not implemented — a
//! failing case panics with the drawn values available via the assertion
//! message, which is sufficient for the property tests in this workspace.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for "any value of T" (primitives).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Creates an [`Any`] strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Creates a union from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            assert!(options.iter().any(|(w, _)| *w > 0), "all weights are zero");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.next_u64() % total;
            for (weight, strategy) in &self.options {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty length range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length comes from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Per-test deterministic RNG (xoshiro256++ seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG seeded from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }

    /// Number of cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases drawn per property test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Builds a union strategy from alternatives (optionally weighted).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests.  Each function's arguments are drawn from the
/// given strategies; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    (config = $config:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in -5i8..=5, w in 0usize..10) {
            prop_assert!((-5..=5).contains(&v));
            prop_assert!(w < 10);
        }

        #[test]
        fn vec_lengths_respect_spec(
            a in crate::collection::vec(0u8..=255, 3),
            b in crate::collection::vec(0u8..=255, 1..=4),
        ) {
            prop_assert_eq!(a.len(), 3);
            prop_assert!((1..=4).contains(&b.len()));
        }

        #[test]
        fn oneof_draws_from_all_options(
            v in prop_oneof![Just(1i32), Just(2), 10i32..20],
        ) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
