//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace ships a
//! minimal serde implementation.  Instead of serde's visitor-based zero-copy
//! architecture, this shim uses a simple **value tree**: serialization
//! produces a [`Value`], deserialization consumes one.  The derive macros in
//! the vendored `serde_derive` crate generate impls of these simplified
//! traits, and the vendored `serde_json` renders/parses the tree as JSON.
//!
//! The public surface mirrors the subset of serde this repository uses:
//! `serde::Serialize` / `serde::Deserialize` as derive macros and trait
//! bounds.  Code written against this shim (plain `#[derive]`s, no
//! `#[serde(...)]` attributes) is source-compatible with real serde.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the common intermediate representation of the
/// vendored serde shim.
///
/// Objects preserve insertion order (like `serde_json` with its
/// `preserve_order` feature) so derived structs serialize their fields in
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean of a bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `i64` (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.22e18 => Some(*v as i64),
            _ => None,
        }
    }

    /// Numeric value as `u64` (accepts non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::UInt(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.85e19 => Some(*v as u64),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Adds location context (used by the derive macro).
    pub fn at(self, location: &str) -> Self {
        Self {
            message: format!("{location}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the shim's [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

const NULL: Value = Value::Null;

/// Support function for the derive macro: looks up a field of an object,
/// yielding `Null` for missing fields so `Option` fields default to `None`.
pub fn __field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Support function for the derive macro: splits an externally tagged enum
/// value (a single-key object) into `(tag, inner)`.
pub fn __variant_parts(value: &Value) -> Option<(&str, &Value)> {
    let fields = value.as_object()?;
    if fields.len() != 1 {
        return None;
    }
    let (tag, inner) = &fields[0];
    Some((tag.as_str(), inner))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Map keys serializable as JSON object keys.
pub trait MapKey: Ord {
    /// Renders the key as an object key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object key string.
    fn parse_key(key: &str) -> Result<Self, Error>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn parse_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn parse_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!("invalid integer map key `{key}`")))
            }
        }
    )*};
}
int_map_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!(concat!("integer {} out of range for ", stringify!($t)), v))
                })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!(concat!("integer {} out of range for ", stringify!($t)), v))
                })
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length changed during deserialization"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in fields {
            out.insert(K::parse_key(k)?, V::from_value(v)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
