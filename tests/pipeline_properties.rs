//! Property tests (vendored `proptest`) for the pipeline's behavioural
//! contracts:
//!
//! * sequential and rayon-parallel model runs are **bit-identical** for
//!   arbitrary synthetic layer sets, group sizes and Bit-Flip targets;
//! * `flip_tensor` with a zero-column target of 0 is the identity (and the
//!   pipeline's bit-flip stage keeps sharing the unmodified allocation);
//! * BCS compress → decompress round-trips losslessly for random weights and
//!   random group sizes under both encodings.
//!
//! Inputs are drawn from the deterministic per-test RNG of the vendored
//! proptest shim, so every failure is reproducible.

use bitwave::context::ExperimentContext;
use bitwave::core::bitflip::flip_tensor;
use bitwave::core::compress::{BcsCodec, WeightCodec};
use bitwave::core::group::GroupSize;
use bitwave::core::prelude::FlipStrategy;
use bitwave::dnn::layer::LayerSpec;
use bitwave::dnn::models::{NetworkSpec, TaskKind};
use bitwave::pipeline::Pipeline;
use bitwave::tensor::bits::Encoding;
use bitwave::tensor::prelude::*;
use proptest::prelude::*;

/// Builds one synthetic layer from drawn parameters; `kind` selects among
/// the weight-tensor ranks the grouping supports.
fn synth_layer(
    index: usize,
    kind: u8,
    ch_in: usize,
    ch_out: usize,
    sensitivity_pct: u8,
) -> LayerSpec {
    let name = format!("prop.layer{index}");
    let sensitivity = f64::from(sensitivity_pct) / 100.0;
    match kind % 3 {
        0 => LayerSpec::conv2d(name, ch_in, ch_out, 3, 1, 1, 8, sensitivity),
        1 => LayerSpec::pointwise(name, ch_in, ch_out, 4, sensitivity),
        _ => LayerSpec::linear(name, ch_in * 8, ch_out, 1, sensitivity),
    }
}

fn synth_network(layer_params: &[(u8, usize, usize, u8)]) -> NetworkSpec {
    NetworkSpec {
        name: "PropNet".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 70.0,
        layers: layer_params
            .iter()
            .enumerate()
            .map(|(i, &(kind, ch_in, ch_out, sens))| synth_layer(i, kind, ch_in, ch_out, sens))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Sequential vs parallel runs are bit-identical for arbitrary
    /// synthetic layer sets, seeds, group sizes and per-layer flip targets.
    #[test]
    fn sequential_and_parallel_runs_are_bit_identical(
        kinds in proptest::collection::vec(0u8..3, 1..=4),
        ch_in in 1usize..12,
        ch_out in 1usize..16,
        sens in proptest::collection::vec(0u8..=100, 4),
        seed in 0u64..1_000,
        group in prop_oneof![Just(GroupSize::G8), Just(GroupSize::G16), Just(GroupSize::G32)],
        targets in proptest::collection::vec(0u32..=6, 4),
    ) {
        let params: Vec<(u8, usize, usize, u8)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, ch_in + i, ch_out + i, sens[i % sens.len()]))
            .collect();
        let net = synth_network(&params);
        let ctx = ExperimentContext::default()
            .with_sample_cap(2_000)
            .with_seed(seed)
            .with_group_size(group);
        let mut strategy = FlipStrategy::new();
        for (layer, target) in net.layers.iter().zip(&targets) {
            if *target > 0 {
                strategy.set(&layer.name, group, *target);
            }
        }
        let pipeline = Pipeline::new(ctx).with_strategy(strategy);
        let sequential = pipeline.run_model(&net).unwrap();
        let parallel = pipeline.run_model_parallel(&net).unwrap();
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.layers.len(), net.layers.len());
    }

    /// (b) A zero-column target of 0 never modifies the tensor.
    #[test]
    fn flip_with_zero_target_is_the_identity(
        data in proptest::collection::vec(-127i8..=127, 1..256),
        g in prop_oneof![Just(8usize), Just(16), Just(32), 1usize..64],
        sm in proptest::strategy::any::<bool>(),
    ) {
        let len = data.len();
        let tensor = QuantTensor::new(Shape::d1(len), data, QuantParams::unit()).unwrap();
        let encoding = if sm { Encoding::SignMagnitude } else { Encoding::TwosComplement };
        let (flipped, stats) = flip_tensor(&tensor, GroupSize::from_len(g), 0, encoding).unwrap();
        prop_assert_eq!(flipped.data(), tensor.data());
        prop_assert_eq!(stats.groups_modified, 0);
        prop_assert_eq!(stats.rms_perturbation, 0.0);
    }

    /// (c) BCS compression is lossless for random weights and group sizes
    /// under both encodings.
    #[test]
    fn bcs_compress_decompress_roundtrips(
        weights in proptest::collection::vec(-127i8..=127, 1..512),
        g in prop_oneof![Just(8usize), Just(16), Just(32), 1usize..64],
    ) {
        for encoding in [Encoding::SignMagnitude, Encoding::TwosComplement] {
            let codec = BcsCodec::new(GroupSize::from_len(g), encoding);
            let compressed = codec.compress(&weights);
            prop_assert_eq!(compressed.decompress(), weights.clone());
            prop_assert!(compressed.total_bits() >= compressed.payload_bits);
        }
    }
}

/// The pipeline-level face of property (b): a lossless (target 0) trip
/// through the bit-flip stage keeps sharing the *same weight allocation*,
/// copy-free end to end.
#[test]
fn lossless_pipeline_shares_weight_allocations_end_to_end() {
    use bitwave::dnn::models::resnet18;
    use bitwave::tensor::copy_metrics::CopyCounter;

    let ctx = ExperimentContext::default().with_sample_cap(2_000);
    let net = resnet18();
    let weights = ctx.weights(&net);
    let pipeline = Pipeline::new(ctx);

    let _guard = bitwave::tensor::copy_metrics::exclusive();
    let counter = CopyCounter::snapshot();
    let prepared = pipeline.prepare_with_weights(&net, &weights).unwrap();
    assert_eq!(
        counter.delta(),
        0,
        "lossless prepare must not deep-copy any weight tensor"
    );
    for layer in &prepared {
        let source = weights.layer_handle(&layer.job.layer.name).unwrap();
        assert!(
            layer.job.weights.shares_allocation_with(source),
            "{}: unflipped weights must share the planned allocation",
            layer.job.layer.name
        );
        assert!(
            layer.analysis.weights().shares_allocation_with(source),
            "{}: the analysis must share the same allocation",
            layer.job.layer.name
        );
    }
}
