//! Integration tests asserting that every experiment driver reproduces the
//! qualitative shape of its figure (who wins, in which direction, with
//! roughly which factor).  EXPERIMENTS.md records the quantitative
//! paper-vs-measured comparison.

use bitwave::context::ExperimentContext;
use bitwave::dnn::models::bert_base;
use bitwave::experiments::bitflip::{fig06_pareto, fig06_tradeoff};
use bitwave::experiments::evaluation::{fig13_speedup_breakdown, fig14_15_17_sota_comparison};
use bitwave::experiments::hardware::{
    fig12_workload_summary, fig18_area_power_breakdown, table01_su_bandwidth,
    table03_sota_comparison, table04_pe_cost,
};
use bitwave::experiments::sparsity::{fig01_sparsity_survey, fig05_compression_ratio};

fn ctx() -> ExperimentContext {
    ExperimentContext::default().with_sample_cap(2_000)
}

#[test]
fn fig01_bit_sparsity_dominates_value_sparsity_on_every_network() {
    let rows = fig01_sparsity_survey(&ctx()).unwrap();
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(row.speedup_ratio_twos_complement > 1.0, "{}", row.network);
        assert!(row.speedup_ratio_sign_magnitude >= row.speedup_ratio_twos_complement);
    }
}

#[test]
fn fig05_bcs_wins_at_hardware_group_sizes() {
    let rows = fig05_compression_ratio(&ctx()).unwrap();
    let zre = rows
        .iter()
        .find(|r| r.codec == "ZRE")
        .unwrap()
        .cr_with_index;
    let bcs16 = rows
        .iter()
        .find(|r| r.codec == "BCS" && r.group_size == Some(16))
        .unwrap()
        .cr_with_index;
    assert!(bcs16 > zre);
    assert!(
        bcs16 > 1.2,
        "BCS at G=16 should compress ResNet18's late layers"
    );
}

#[test]
fn fig06_bert_bitflip_reaches_paper_scale_compression() {
    // The paper: BERT reaches 1.46x CR with no drop and up to 2.47x with a
    // small drop.  Our proxy should land in the same regime.
    let ctx = ctx();
    let rows = fig06_tradeoff(&ctx, &bert_base()).unwrap();
    let front = fig06_pareto(&rows);
    assert!(!front.is_empty());
    let best_bitflip = rows
        .iter()
        .filter(|r| r.method == "Int8+SM+BitFlip")
        .map(|r| r.compression_ratio)
        .fold(0.0f64, f64::max);
    assert!(
        best_bitflip > 1.4,
        "BERT Bit-Flip compression ratio too small: {best_bitflip:.2}"
    );
}

#[test]
fn fig13_total_speedups_are_in_paper_range() {
    let rows = fig13_speedup_breakdown(&ctx()).unwrap();
    for net in ["ResNet18", "MobileNetV2", "CNN-LSTM", "Bert-Base"] {
        let total = rows
            .iter()
            .find(|r| r.network == net && r.step == "DF+SM+BF")
            .unwrap()
            .speedup_vs_dense;
        // The paper's cumulative gains range from ~1.4x (CNN-LSTM/BERT before
        // BF) up to ~4x (MobileNetV2); accept the same order of magnitude.
        assert!(
            (1.1..20.0).contains(&total),
            "{net}: total speedup {total:.2} out of expected range"
        );
    }
}

#[test]
fn fig14_17_bitwave_leads_and_gap_is_largest_on_low_sparsity_networks() {
    let rows = fig14_15_17_sota_comparison(&ctx()).unwrap();
    let bitwave_speedup = |net: &str| {
        rows.iter()
            .find(|r| r.network == net && r.accelerator == "BitWave+DF+SM+BF")
            .unwrap()
            .speedup_vs_scnn
    };
    // The paper's headline: the gap over SCNN is largest for CNN-LSTM and
    // BERT (10.1x / 13.25x) because they have almost no value sparsity.
    assert!(bitwave_speedup("Bert-Base") > bitwave_speedup("ResNet18"));
    assert!(bitwave_speedup("CNN-LSTM") > bitwave_speedup("MobileNetV2"));
    assert!(bitwave_speedup("Bert-Base") > 2.0);
    // Energy: every baseline spends at least as much as BitWave (Fig. 15).
    assert!(rows.iter().all(|r| r.energy_vs_bitwave >= 1.0 - 1e-9));
}

#[test]
fn static_tables_match_published_constants() {
    assert_eq!(fig12_workload_summary().len(), 4);
    assert_eq!(table01_su_bandwidth().len(), 7);
    let sota = table03_sota_comparison();
    let bitwave = sota.iter().find(|r| r.design == "BitWave").unwrap();
    assert_eq!(bitwave.technology_nm, 16.0);
    assert!((bitwave.area_mm2.unwrap() - 1.138).abs() < 1e-9);
    assert!((bitwave.power_mw.unwrap() - 17.56).abs() < 1e-9);
    let pe = table04_pe_cost();
    assert!(pe[2].power_mw < pe[0].power_mw);
    let breakdown = fig18_area_power_breakdown();
    let area_sum: f64 = breakdown.iter().map(|r| r.area_fraction).sum();
    assert!((area_sum - 1.0).abs() < 0.02);
}
