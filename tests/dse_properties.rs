//! Property tests (vendored `proptest`) for the dataflow design-space
//! exploration engine's behavioural contracts:
//!
//! * parallel and sequential network searches are **bit-identical** on
//!   arbitrary synthetic networks (serialized JSON compared byte for byte);
//! * memoized (warm) searches equal cold searches exactly, and the warm
//!   sweep never runs a cold search;
//! * the searched winner never loses to the Fig. 9 heuristic on EDP (the
//!   space seeds the accelerator's own SU set);
//! * a `MappingPolicy::Searched` pipeline stays bit-identical between its
//!   sequential and rayon-parallel drivers.

use bitwave::accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave::accel::LayerSparsityProfile;
use bitwave::context::ExperimentContext;
use bitwave::core::group::GroupSize;
use bitwave::dataflow::mapping::MappingPolicy;
use bitwave::dnn::layer::LayerSpec;
use bitwave::dnn::models::{NetworkSpec, TaskKind};
use bitwave::dse::DseEngine;
use bitwave::pipeline::Pipeline;
use proptest::prelude::*;

/// Builds one synthetic layer from drawn parameters (mirrors
/// `tests/pipeline_properties.rs`).
fn synth_layer(index: usize, kind: u8, ch_in: usize, ch_out: usize) -> LayerSpec {
    let name = format!("dse.layer{index}");
    match kind % 3 {
        0 => LayerSpec::conv2d(name, ch_in, ch_out, 3, 1, 1, 8, 0.4),
        1 => LayerSpec::pointwise(name, ch_in, ch_out, 4, 0.4),
        _ => LayerSpec::linear(name, ch_in * 8, ch_out, 1, 0.4),
    }
}

fn synth_network(layer_params: &[(u8, usize, usize)]) -> NetworkSpec {
    NetworkSpec {
        name: "DsePropNet".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 70.0,
        layers: layer_params
            .iter()
            .enumerate()
            .map(|(i, &(kind, ch_in, ch_out))| synth_layer(i, kind, ch_in, ch_out))
            .collect(),
    }
}

fn profiles_for(ctx: &ExperimentContext, net: &NetworkSpec) -> Vec<LayerSparsityProfile> {
    let weights = ctx.weights(net);
    net.layers
        .iter()
        .map(|l| {
            LayerSparsityProfile::from_weights(
                weights.layer(&l.name).unwrap(),
                l.expected_activation_sparsity(),
                ctx.group_size,
            )
            .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Parallel ≡ sequential, byte for byte, and warm ≡ cold, on
    /// arbitrary synthetic networks.
    #[test]
    fn parallel_memoized_and_cold_searches_agree(
        kinds in proptest::collection::vec(0u8..3, 1..=4),
        ch_in in 1usize..12,
        ch_out in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let params: Vec<(u8, usize, usize)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, ch_in + i, ch_out + i))
            .collect();
        let net = synth_network(&params);
        let ctx = ExperimentContext::default()
            .with_sample_cap(2_000)
            .with_seed(seed);
        let profiles = profiles_for(&ctx, &net);
        let accel = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
        let engine = DseEngine::new(ctx.memory, ctx.energy);

        let parallel = engine.search_network(&accel, &net, &profiles).unwrap();
        let sequential = engine
            .search_network_sequential(&accel, &net, &profiles)
            .unwrap();
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&sequential).unwrap()
        );

        // Warm ≡ cold, with zero cold searches in the warm sweep.
        let misses_after_cold = engine.cache().stats().misses();
        let warm = engine.search_network(&accel, &net, &profiles).unwrap();
        prop_assert_eq!(&warm, &parallel);
        prop_assert_eq!(engine.cache().stats().misses(), misses_after_cold);

        // The searched winner never loses to the heuristic per layer, and
        // therefore neither does the per-layer EDP sum.  (The network-level
        // product (Σcycles)×(Σenergy) is *not* mathematically guaranteed on
        // arbitrary networks — a per-layer cycles↔energy trade can inflate
        // it — so it is gated only on the fixed benchmark models.)
        let mut sum_searched = 0.0;
        let mut sum_heuristic = 0.0;
        for layer in &parallel.layers {
            prop_assert!(
                layer.search.winner.cost.edp <= layer.heuristic.cost.edp,
                "{}: searched {} vs heuristic {}",
                &layer.layer,
                layer.search.winner.cost.edp,
                layer.heuristic.cost.edp
            );
            sum_searched += layer.search.winner.cost.edp;
            sum_heuristic += layer.heuristic.cost.edp;
        }
        prop_assert!(sum_searched <= sum_heuristic);
    }

    /// (b) A searched-policy pipeline keeps the sequential/parallel
    /// bit-identity contract on arbitrary synthetic networks.
    #[test]
    fn searched_pipeline_runs_are_bit_identical(
        kinds in proptest::collection::vec(0u8..3, 1..=3),
        ch_in in 1usize..10,
        ch_out in 1usize..12,
        seed in 0u64..1_000,
        group in prop_oneof![Just(GroupSize::G8), Just(GroupSize::G16), Just(GroupSize::G32)],
    ) {
        let params: Vec<(u8, usize, usize)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, ch_in + i, ch_out + i))
            .collect();
        let net = synth_network(&params);
        let ctx = ExperimentContext::default()
            .with_sample_cap(2_000)
            .with_seed(seed)
            .with_group_size(group)
            .with_mapping_policy(MappingPolicy::Searched);
        let pipeline = Pipeline::new(ctx);
        let sequential = pipeline.run_model(&net).unwrap();
        let parallel = pipeline.run_model_parallel(&net).unwrap();
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.layers.len(), net.layers.len());
    }
}
