//! Integration tests for the DRAM roofline: the unconstrained default tier
//! must preserve the legacy additive Eq. 5 reports *byte for byte* (no
//! boundedness keys, identical totals), while a constrained tier switches
//! the per-layer total to `max(compute, dram)` and surfaces the
//! memory-bound verdict through [`ModelReport`].

use bitwave::accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave::context::ExperimentContext;
use bitwave::dataflow::DramSpec;
use bitwave::dnn::layer::LayerSpec;
use bitwave::dnn::models::{NetworkSpec, TaskKind};
use bitwave::pipeline::{ModelReport, Pipeline};

fn network() -> NetworkSpec {
    NetworkSpec {
        name: "RooflineNet".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 70.0,
        layers: vec![
            LayerSpec::conv2d("stem", 3, 16, 3, 1, 1, 16, 0.9),
            LayerSpec::conv2d("mid", 16, 32, 3, 2, 1, 16, 0.3),
            LayerSpec::linear("head", 2048, 10, 1, 0.5),
        ],
    }
}

fn run(dram: DramSpec) -> ModelReport {
    let mut spec = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    spec.dram = dram;
    Pipeline::new(
        ExperimentContext::default()
            .with_sample_cap(2_000)
            .with_seed(7),
    )
    .with_accelerator(spec)
    .run_model(&network())
    .expect("pipeline run succeeds")
}

#[test]
fn unconstrained_default_reports_no_boundedness_keys() {
    let report = run(DramSpec::unconstrained());
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(
        !json.contains("boundedness") && !json.contains("memory_bound"),
        "the unconstrained default must keep report JSON byte-identical to \
         the pre-DRAM schema"
    );
    assert_eq!(report.memory_bound_layers, 0);
    for layer in &report.layers {
        assert!(layer.simulation.boundedness.is_none());
        // Legacy additive Eq. 5: total = dram + everything else, so the
        // DRAM term is strictly inside the total whenever it is non-zero.
        assert!(layer.simulation.dram_cycles <= layer.simulation.total_cycles);
    }
    // Legacy JSON (without the new optional keys) still deserializes.
    let back: ModelReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn generous_bandwidth_collapses_the_roofline_to_compute() {
    let baseline = run(DramSpec::unconstrained());
    let report = run(DramSpec::constrained(1 << 30));
    assert_eq!(report.memory_bound_layers, 0);
    for (layer, legacy) in report.layers.iter().zip(&baseline.layers) {
        let b = layer
            .simulation
            .boundedness
            .expect("constrained tiers always report boundedness");
        assert!(!b.memory_bound);
        assert_eq!(b.dram_stall_cycles, 0.0);
        // total = max(compute_side, ~0) = compute_side, which is the legacy
        // additive total minus its serialized DRAM term.
        assert!((layer.simulation.total_cycles - b.compute_side_cycles).abs() < 1e-6);
        assert!(layer.simulation.total_cycles <= legacy.simulation.total_cycles + 1e-6);
    }
}

#[test]
fn starved_bandwidth_surfaces_memory_bound_layers() {
    let report = run(DramSpec::constrained(1));
    assert!(
        report.memory_bound_layers > 0,
        "a 1 bit/cycle interface must leave layers memory bound"
    );
    assert!(report.memory_bound_layers <= report.layers.len());
    let bound = report
        .layers
        .iter()
        .find(|l| l.simulation.boundedness.is_some_and(|b| b.memory_bound))
        .expect("at least one memory-bound layer");
    let b = bound.simulation.boundedness.unwrap();
    assert!((bound.simulation.total_cycles - b.dram_cycles).abs() < 1e-6);
    assert!(b.dram_stall_fraction > 0.0 && b.dram_stall_fraction < 1.0);
    assert!(b.weight_fetches >= 1 && b.act_fetches >= 1);
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(json.contains("\"memory_bound_layers\""));
    assert!(json.contains("\"dram_stall_fraction\""));
    let back: ModelReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn throttling_never_reduces_total_cycles() {
    let unconstrained = run(DramSpec::unconstrained());
    let generous = run(DramSpec::constrained(1 << 30));
    let throttled = run(DramSpec::constrained(8));
    let starved = run(DramSpec::constrained(1));
    for ((g, t), s) in generous
        .layers
        .iter()
        .zip(&throttled.layers)
        .zip(&starved.layers)
    {
        assert!(t.simulation.total_cycles >= g.simulation.total_cycles - 1e-6);
        assert!(s.simulation.total_cycles >= t.simulation.total_cycles - 1e-6);
    }
    // Compute-side work (effective MACs) is bandwidth-independent.
    for report in [&generous, &throttled, &starved] {
        for (layer, legacy) in report.layers.iter().zip(&unconstrained.layers) {
            assert_eq!(
                layer.simulation.effective_macs,
                legacy.simulation.effective_macs
            );
        }
    }
}
