//! Golden-report snapshot tests.
//!
//! One fixed synthetic network is run through the full pipeline for every
//! codec/accelerator combination the evaluation exercises (no compression,
//! BCS with Bit-Flip, ZRE, and both bit-serial baselines), and the resulting
//! [`ModelReport`] JSON is compared **byte for byte** against the snapshots
//! under `tests/golden/`.  These snapshots were captured before the
//! zero-copy/single-pass pipeline refactor, so they pin the refactor to
//! bit-identical numerical output.
//!
//! # Updating the snapshots
//!
//! When an *intentional* model change alters the reports, regenerate the
//! snapshots and commit the diff:
//!
//! ```bash
//! UPDATE_GOLDEN=1 cargo test -q --test golden_reports
//! ```
//!
//! Never set `UPDATE_GOLDEN` to make an unexplained mismatch go away: a
//! mismatch means the pipeline's numerical behaviour changed.

use bitwave::accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave::context::ExperimentContext;
use bitwave::dnn::layer::{LayerKind, LayerSpec};
use bitwave::dnn::models::{NetworkSpec, TaskKind};
use bitwave::pipeline::{ModelReport, Pipeline};
use std::fs;
use std::path::PathBuf;

/// A small fixed network covering all weight-tensor ranks the grouping
/// supports (4-D conv, 1×1 conv, 2-D linear) with both sensitive and
/// insensitive layers, so the default Bit-Flip strategy targets a strict
/// subset of the layers.
fn golden_network() -> NetworkSpec {
    NetworkSpec {
        name: "GoldenNet".to_string(),
        task: TaskKind::Classification,
        baseline_quality: 71.0,
        layers: vec![
            LayerSpec::conv2d("stem", 3, 16, 3, 1, 1, 16, 0.9),
            LayerSpec::conv2d("mid", 16, 32, 3, 2, 1, 16, 0.3),
            LayerSpec::pointwise("proj", 32, 64, 8, 0.2),
            LayerSpec::linear("head", 1024, 10, 1, 0.5),
        ],
    }
}

fn golden_context() -> ExperimentContext {
    ExperimentContext::default()
        .with_sample_cap(4_000)
        .with_seed(7)
}

/// `(file slug, accelerator, apply the default Bit-Flip strategy)` — one case
/// per codec/accelerator combination.
fn golden_cases() -> Vec<(&'static str, AcceleratorSpec, bool)> {
    vec![
        ("dense", AcceleratorSpec::dense(), false),
        (
            "bitwave_bcs_lossless",
            AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            false,
        ),
        (
            "bitwave_bcs_bitflip",
            AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
            true,
        ),
        ("scnn_zre", AcceleratorSpec::scnn(), false),
        ("pragmatic", AcceleratorSpec::pragmatic(), false),
        ("bitlet", AcceleratorSpec::bitlet(), false),
    ]
}

/// A small fixed network with a **non-CNN layer mix** — attention
/// projections, feed-forward blocks, an LSTM gate bundle and a linear head —
/// so the snapshots also pin the matmul/LSTM code paths (dense weight
/// profiles, low column sparsity) that `golden_network` cannot reach.  The
/// layer-1 projections are marked sensitive like BERT's (Fig. 6d), so the
/// default Bit-Flip strategy differentiates targets.
fn golden_bert_network() -> NetworkSpec {
    let mut layers = Vec::new();
    for (layer_no, sensitivity) in [(0usize, 0.35f64), (1, 1.0)] {
        for proj in ["q", "output"] {
            layers.push(LayerSpec::transformer(
                format!("encoder.{layer_no}.attention.{proj}"),
                LayerKind::AttentionProjection,
                192,
                192,
                4,
                sensitivity,
            ));
        }
        layers.push(LayerSpec::transformer(
            format!("encoder.{layer_no}.intermediate"),
            LayerKind::FeedForward,
            192,
            768,
            4,
            sensitivity * 0.8,
        ));
        layers.push(LayerSpec::transformer(
            format!("encoder.{layer_no}.ffn_output"),
            LayerKind::FeedForward,
            768,
            192,
            4,
            sensitivity * 0.8,
        ));
    }
    layers.push(LayerSpec::lstm_gates("lstm.0", 192, 96, 16, 0.45));
    layers.push(LayerSpec::transformer(
        "qa_outputs",
        LayerKind::Linear,
        192,
        2,
        4,
        0.3,
    ));
    NetworkSpec {
        name: "GoldenBert".to_string(),
        task: TaskKind::QuestionAnswering,
        baseline_quality: 88.0,
        layers,
    }
}

fn golden_path(slug: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{slug}.json"))
}

/// Byte-compares `report` against `tests/golden/{slug}.json`, or rewrites
/// the snapshot when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(slug: &str, report: &ModelReport) {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let json = serde_json::to_string_pretty(report).expect("report serializes") + "\n";
    let path = golden_path(slug);
    if update {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, &json).expect("write golden snapshot");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `UPDATE_GOLDEN=1 cargo test -q --test \
             golden_reports` to create it",
            path.display()
        )
    });
    assert_eq!(
        json, golden,
        "ModelReport for `{slug}` diverged from its golden snapshot; if the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test -q --test golden_reports`"
    );
}

#[test]
fn model_reports_match_golden_snapshots() {
    let net = golden_network();
    for (slug, accelerator, bitflip) in golden_cases() {
        let mut pipeline = Pipeline::new(golden_context()).with_accelerator(accelerator);
        if bitflip {
            pipeline = pipeline.with_default_bitflip(&net);
        }
        let report = pipeline.run_model(&net).expect("golden run succeeds");
        assert_matches_golden(slug, &report);
    }
}

#[test]
fn bert_style_model_report_matches_golden_snapshot() {
    // The non-CNN mix runs the full BitWave configuration with the default
    // Bit-Flip strategy, which must target only the insensitive encoder-0
    // blocks (BERT-style sensitivity split).
    let net = golden_bert_network();
    let report = Pipeline::new(golden_context())
        .with_accelerator(AcceleratorSpec::bitwave(BitwaveOptimizations::all()))
        .with_default_bitflip(&net)
        .run_model(&net)
        .expect("golden bert run succeeds");
    assert!(
        report.layers.iter().any(|l| l.bitflip.is_some()),
        "the default strategy must flip some weight-heavy layer"
    );
    assert_matches_golden("bert_style", &report);
}

#[test]
fn golden_cases_cover_every_codec_and_pe_style() {
    use bitwave::accel::spec::{PeStyle, WeightCompression};
    let cases = golden_cases();
    for compression in [
        WeightCompression::None,
        WeightCompression::Zre,
        WeightCompression::Bcs,
    ] {
        assert!(
            cases.iter().any(|(_, a, _)| a.compression == compression),
            "no golden case covers {compression:?}"
        );
    }
    for style in [
        PeStyle::BitParallel,
        PeStyle::BitSerial,
        PeStyle::BitColumnSerial,
    ] {
        assert!(
            cases.iter().any(|(_, a, _)| a.pe_style == style),
            "no golden case covers {style:?}"
        );
    }
}
