//! Cross-crate integration tests: the full compress → bit-flip → map →
//! simulate chain on real layer shapes, exercised through the unified
//! `bitwave::pipeline` subsystem.

use bitwave::context::ExperimentContext;
use bitwave::core::group::GroupSize;
use bitwave::core::prelude::zero_column_count;
use bitwave::core::prelude::Encoding;
use bitwave::dnn::models::{cnn_lstm, resnet18};
use bitwave::dnn::weights::generate_layer_sample;
use bitwave::pipeline::{BitFlipStage, CompressStage, Pipeline, PipelineStage};
use bitwave::sim::engine::{BitwaveEngine, EngineConfig};
use bitwave::tensor::prelude::*;

/// Compress a real ResNet18 layer through the pipeline's compress stage,
/// check losslessness of the underlying codec, run the bit-flip stage, and
/// check that the flipped tensor both satisfies the zero-column constraint
/// and compresses strictly better.
#[test]
fn compress_flip_compress_pipeline() {
    let ctx = ExperimentContext::default().with_sample_cap(20_000);
    let net = resnet18();
    let pipeline = Pipeline::new(ctx.clone());
    let weights = ctx.weights(&net);
    let mut jobs = pipeline.jobs_with_weights(&net, &weights).unwrap();
    jobs.retain(|j| j.layer.name == "layer4.0.conv2");
    let mut job = jobs.into_iter().next().expect("layer planned");
    job.zero_column_target = 5;

    // The stage's accounting must agree with the raw codec, which is lossless.
    let codec = bitwave::core::compress::BcsCodec::new(GroupSize::G16, Encoding::SignMagnitude);
    let raw = {
        use bitwave::core::compress::WeightCodec;
        codec.compress(job.weights.data())
    };
    assert_eq!(raw.decompress(), job.weights.data());

    let compressed = CompressStage::new(Encoding::SignMagnitude)
        .run(job)
        .unwrap();
    let baseline_cr = compressed.compression.cr_with_index;
    assert!(
        baseline_cr > 1.0,
        "lossless BCS should already compress: {baseline_cr}"
    );

    let flipped = BitFlipStage::new(Encoding::SignMagnitude)
        .run(compressed)
        .unwrap();
    let flip = flipped.bitflip.expect("target 5 must flip");
    assert!(flip.mean_zero_columns >= 5.0);
    assert!(
        flip.compression_after.cr_with_index > baseline_cr,
        "Bit-Flip must improve the compression ratio"
    );

    // Every group of the flipped tensor honours the constraint.
    let groups =
        bitwave::core::group::extract_groups(&flipped.job.weights, GroupSize::G16).unwrap();
    for g in groups.iter() {
        assert!(zero_column_count(g, Encoding::SignMagnitude) >= 5);
    }
}

/// The parallel whole-model pipeline run is bit-identical to the sequential
/// run, with and without Bit-Flip (the determinism contract of
/// `run_model_parallel`).
#[test]
fn parallel_pipeline_is_bit_identical_to_sequential() {
    let ctx = ExperimentContext::default().with_sample_cap(4_000);
    let net = resnet18();
    for with_flip in [false, true] {
        let mut pipeline = Pipeline::new(ctx.clone());
        if with_flip {
            pipeline = pipeline.with_default_bitflip(&net);
        }
        let sequential = pipeline.run_model(&net).unwrap();
        let parallel = pipeline.run_model_parallel(&net).unwrap();
        assert_eq!(
            sequential, parallel,
            "parallel run diverged (bitflip: {with_flip})"
        );
        // And the reports serialise/deserialise losslessly.
        let json = serde_json::to_string_pretty(&parallel).unwrap();
        let back: bitwave::pipeline::ModelReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, parallel);
    }
}

/// The cycle-level simulator agrees with the Int8 reference on a real
/// (sampled) CNN-LSTM projection layer and skips a meaningful number of
/// columns.
#[test]
fn simulator_runs_real_layer_weights() {
    let net = cnn_lstm();
    let layer = net.layer("fc.mask").unwrap();
    let weights = generate_layer_sample(layer, 9, 16_384);
    let k = weights.shape().dim(0);
    let c = weights.shape().dim(1);
    assert_eq!(c, 2048);

    let acts = ActivationGenerator::new(
        bitwave::tensor::synth::ActivationKind::Gaussianlike { std: 1.0 },
        17,
    )
    .generate(Shape::d2(4, c));
    let acts = quantize_per_tensor(&acts, 8).unwrap();

    let engine = BitwaveEngine::new(EngineConfig::su1());
    let (outputs, stats) = engine.run_linear_verified(&acts, &weights).unwrap();
    assert_eq!(outputs.len(), 4 * k);
    assert!(stats.column_skip_speedup() > 1.0);
    assert!(stats.weight_compression_ratio() > 1.0);
}

/// The analytical model and the simulator agree (paper: < 6 % deviation), and
/// the experiment driver exposes that check.
#[test]
fn model_matches_simulator_for_validation_workload() {
    let ctx = ExperimentContext::default().with_sample_cap(8_000);
    let report = bitwave::experiments::evaluation::validation_model_vs_simulator(&ctx).unwrap();
    assert!(
        report.within_paper_bound(),
        "model/simulator deviation {:.3} exceeds the paper's 6% bound",
        report.deviation
    );
    assert!(report.simulated_compression_ratio > 1.0);
}
