//! Cross-crate integration tests: the full compress → flip → map → model →
//! simulate pipeline on real layer shapes.

use bitwave::context::ExperimentContext;
use bitwave::core::compress::{BcsCodec, WeightCodec};
use bitwave::core::group::GroupSize;
use bitwave::core::prelude::zero_column_count;
use bitwave::core::prelude::Encoding;
use bitwave::dnn::models::{cnn_lstm, resnet18};
use bitwave::dnn::weights::generate_layer_sample;
use bitwave::sim::engine::{BitwaveEngine, EngineConfig};
use bitwave::tensor::prelude::*;

/// Compress a real ResNet18 layer, check losslessness, flip it, and check
/// that the flipped tensor both satisfies the zero-column constraint and
/// compresses strictly better.
#[test]
fn compress_flip_compress_pipeline() {
    let ctx = ExperimentContext::default().with_sample_cap(20_000);
    let net = resnet18();
    let weights = ctx.weights(&net);
    let tensor = weights.layer("layer4.0.conv2").unwrap();

    let codec = BcsCodec::new(GroupSize::G16, Encoding::SignMagnitude);
    let baseline = codec.compress(tensor.data());
    assert_eq!(baseline.decompress(), tensor.data());
    let baseline_cr = baseline.compression_ratio_with_index();
    assert!(baseline_cr > 1.0, "lossless BCS should already compress: {baseline_cr}");

    let (flipped, stats) =
        bitwave::core::bitflip::flip_tensor(tensor, GroupSize::G16, 5, Encoding::SignMagnitude);
    assert!(stats.mean_zero_columns >= 5.0);
    let flipped_compressed = codec.compress(flipped.data());
    assert_eq!(flipped_compressed.decompress(), flipped.data());
    assert!(
        flipped_compressed.compression_ratio_with_index() > baseline_cr,
        "Bit-Flip must improve the compression ratio"
    );

    // Every group of the flipped tensor honours the constraint.
    let groups = bitwave::core::group::extract_groups(&flipped, GroupSize::G16);
    for g in groups.iter() {
        assert!(zero_column_count(g, Encoding::SignMagnitude) >= 5);
    }
}

/// The cycle-level simulator agrees with the Int8 reference on a real
/// (sampled) CNN-LSTM projection layer and skips a meaningful number of
/// columns.
#[test]
fn simulator_runs_real_layer_weights() {
    let net = cnn_lstm();
    let layer = net.layer("fc.mask").unwrap();
    let weights = generate_layer_sample(layer, 9, 16_384);
    let k = weights.shape().dim(0);
    let c = weights.shape().dim(1);
    assert_eq!(c, 2048);

    let acts = ActivationGenerator::new(
        bitwave::tensor::synth::ActivationKind::Gaussianlike { std: 1.0 },
        17,
    )
    .generate(Shape::d2(4, c));
    let acts = quantize_per_tensor(&acts, 8).unwrap();

    let engine = BitwaveEngine::new(EngineConfig::su1());
    let (outputs, stats) = engine.run_linear_verified(&acts, &weights).unwrap();
    assert_eq!(outputs.len(), 4 * k);
    assert!(stats.column_skip_speedup() > 1.0);
    assert!(stats.weight_compression_ratio() > 1.0);
}

/// The analytical model and the simulator agree (paper: < 6 % deviation), and
/// the experiment driver exposes that check.
#[test]
fn model_matches_simulator_for_validation_workload() {
    let ctx = ExperimentContext::default().with_sample_cap(8_000);
    let report = bitwave::experiments::evaluation::validation_model_vs_simulator(&ctx);
    assert!(
        report.within_paper_bound(),
        "model/simulator deviation {:.3} exceeds the paper's 6% bound",
        report.deviation
    );
    assert!(report.simulated_compression_ratio > 1.0);
}
