//! Runs Algorithm 1 — the greedy layer-wise Bit-Flip search — on ResNet18
//! with the accuracy proxy, and reports the chosen strategy, the resulting
//! compression ratio and the model-quality cost (Fig. 6a/e).
//!
//! Run with: `cargo run --release --example bitflip_search`

use bitwave::context::ExperimentContext;
use bitwave::dnn::models::resnet18;
use bitwave::experiments::bitflip::{
    fig06_layer_sensitivity, network_bcs_compression, run_greedy_search,
};

fn main() -> Result<(), bitwave::BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(20_000);
    let net = resnet18();

    // Step 1: layer-level sensitivity analysis on a representative subset.
    println!("== Layer-wise Bit-Flip sensitivity (Fig. 6a) ==");
    let probe_layers = vec![
        "conv1".to_string(),
        "layer1.0.conv1".to_string(),
        "layer3.0.conv1".to_string(),
        "layer4.1.conv2".to_string(),
        "fc".to_string(),
    ];
    for row in fig06_layer_sensitivity(&ctx, &net, &probe_layers, 7)? {
        if row.zero_columns % 2 == 1 {
            continue; // print every other point to keep the table short
        }
        println!(
            "{:<18} z={}  accuracy {:>6.2}%  (drop {:>5.2})",
            row.layer, row.zero_columns, row.quality, row.quality_drop
        );
    }

    // Step 2: network-wide greedy search (Algorithm 1) over the weight-heavy
    // layers with a 0.5-point accuracy budget.
    println!("\n== Algorithm 1: greedy Bit-Flip search ==");
    let layers: Vec<String> = net
        .weight_heavy_layers(0.7)
        .iter()
        .map(|l| l.name.clone())
        .collect();
    let floor = net.baseline_quality - 0.5;
    let outcome = run_greedy_search(&ctx, &net, &layers, floor, 40)?;
    println!(
        "{} accepted moves, {} evaluations, final accuracy {:.2}% (floor {:.2}%)",
        outcome.history.len(),
        outcome.evaluations,
        outcome.final_accuracy,
        floor
    );
    for (layer, group_size, zero_columns) in outcome.strategy.iter() {
        if zero_columns > 0 {
            println!("  {layer:<20} {group_size}  -> {zero_columns} zero columns");
        }
    }

    // Step 3: the resulting weight compression ratio.
    let weights = ctx.weights(&net);
    let flipped = weights
        .apply_flip_strategy(&outcome.strategy)
        .map_err(bitwave::BitwaveError::Core)?;
    println!(
        "\nnetwork-wide BCS compression: baseline {:.2}x -> after search {:.2}x",
        network_bcs_compression(&ctx, &net, &weights)?,
        network_bcs_compression(&ctx, &net, &flipped)?
    );
    Ok(())
}
