//! Quickstart: compress a weight tensor with bit-column sparsity, flip it,
//! and estimate the resulting speedup on the BitWave accelerator model.
//!
//! Run with: `cargo run --example quickstart`

use bitwave::accel::model::evaluate_layer;
use bitwave::accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave::accel::{EnergyModel, LayerSparsityProfile};
use bitwave::core::bitflip::flip_tensor;
use bitwave::core::compress::{BcsCodec, WeightCodec};
use bitwave::core::group::GroupSize;
use bitwave::core::prelude::Encoding;
use bitwave::dataflow::MemoryHierarchy;
use bitwave::dnn::models::resnet18;
use bitwave::dnn::weights::generate_layer_sample;

fn main() {
    // 1. Take a real layer shape from ResNet18 and give it synthetic Int8
    //    weights whose statistics match a trained layer.
    let net = resnet18();
    let layer = net.layer("layer4.0.conv1").expect("layer exists");
    let weights = generate_layer_sample(layer, 42, 100_000);
    println!("layer {:>18}: {} weights", layer.name, weights.data().len());

    // 2. Lossless BCS compression in sign-magnitude form.
    let codec = BcsCodec::new(GroupSize::G16, Encoding::SignMagnitude);
    let compressed = codec.compress(weights.data());
    println!(
        "lossless BCS compression ratio (index included): {:.2}x",
        compressed.compression_ratio_with_index()
    );
    assert_eq!(compressed.decompress(), weights.data());

    // 3. One-shot Bit-Flip to at least 5 zero columns per group of 16.
    let (flipped, stats) = flip_tensor(&weights, GroupSize::G16, 5, Encoding::SignMagnitude);
    let flipped_compressed = codec.compress(flipped.data());
    println!(
        "after Bit-Flip (z=5): {:.2}x compression, RMS perturbation {:.3} LSB",
        flipped_compressed.compression_ratio_with_index(),
        stats.rms_perturbation
    );

    // 4. Estimate the layer's latency and energy on BitWave vs the dense
    //    reference configuration.
    let memory = MemoryHierarchy::bitwave_default();
    let energy = EnergyModel::finfet_16nm();
    let profile =
        LayerSparsityProfile::from_weights(&flipped, layer.expected_activation_sparsity(), GroupSize::G16);
    let dense = evaluate_layer(&AcceleratorSpec::dense(), layer, &profile, &memory, &energy);
    let bitwave = evaluate_layer(
        &AcceleratorSpec::bitwave(BitwaveOptimizations::all()),
        layer,
        &profile,
        &memory,
        &energy,
    );
    println!(
        "dense reference : {:>12.0} cycles, {:.3} mJ",
        dense.total_cycles,
        dense.energy.total_pj() / 1e9
    );
    println!(
        "BitWave         : {:>12.0} cycles, {:.3} mJ  ({:.2}x faster)",
        bitwave.total_cycles,
        bitwave.energy.total_pj() / 1e9,
        dense.total_cycles / bitwave.total_cycles
    );
}
