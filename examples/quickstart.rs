//! Quickstart: run one ResNet18 model through the unified pipeline
//! (compress → bit-flip → map → simulate) and print one layer's full
//! report as pretty JSON, then compare against the dense reference.
//!
//! Run with: `cargo run --example quickstart`

use bitwave::accel::spec::AcceleratorSpec;
use bitwave::context::ExperimentContext;
use bitwave::dnn::models::resnet18;
use bitwave::error::BitwaveError;
use bitwave::pipeline::Pipeline;

fn main() -> Result<(), BitwaveError> {
    // 1. Configure the experiment: synthetic Int8 ResNet18 weights, sampled
    //    to 100k elements per layer, grouped 16 channels at a time.
    let ctx = ExperimentContext::default().with_sample_cap(100_000);
    let net = resnet18();

    // 2. One pipeline per accelerator configuration.  The BitWave pipeline
    //    also applies the paper's default one-shot Bit-Flip strategy.
    let bitwave = Pipeline::new(ctx.clone()).with_default_bitflip(&net);
    let dense = Pipeline::new(ctx).with_accelerator(AcceleratorSpec::dense());

    // 3. Run the whole model across all cores; the parallel run is
    //    bit-identical to `run_model`.
    let report = bitwave.run_model_parallel(&net)?;
    let dense_report = dense.run_model_parallel(&net)?;

    // 4. Inspect one weight-heavy layer end to end: serde serialises the
    //    full LayerReport (sparsity, compression, bit-flip, mapping and
    //    simulation sections) straight to JSON.
    let layer = report
        .layers
        .iter()
        .find(|l| l.layer == "layer4.0.conv1")
        .ok_or_else(|| BitwaveError::MissingLayer {
            network: net.name.clone(),
            layer: "layer4.0.conv1".to_string(),
        })?;
    println!("=== LayerReport for {} ===", layer.layer);
    println!("{}", serde_json::to_string_pretty(layer)?);

    // 5. Whole-model summary: BitWave vs the dense reference.
    println!();
    println!("=== Whole-model summary ({}) ===", report.network);
    println!(
        "weight compression : {:.2}x (index included)",
        report.weight_compression_ratio
    );
    println!(
        "dense reference    : {:>14.0} cycles, {:.3} mJ",
        dense_report.total_cycles,
        dense_report.energy.total_mj()
    );
    println!(
        "BitWave (DF+SM+BF) : {:>14.0} cycles, {:.3} mJ  ({:.2}x faster)",
        report.total_cycles,
        report.energy.total_mj(),
        report.speedup_over(&dense_report)
    );
    Ok(())
}
