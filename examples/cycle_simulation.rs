//! Runs the cycle-level BitWave simulator on a small convolution and a
//! transformer projection, verifies the bit-column-serial arithmetic against
//! the Int8 reference, and compares the measured cycles with the analytical
//! model (the paper's < 6 % validation, Section V-B).
//!
//! Run with: `cargo run --release --example cycle_simulation`

use bitwave::context::ExperimentContext;
use bitwave::error::BitwaveError;
use bitwave::experiments::evaluation::validation_model_vs_simulator;
use bitwave::sim::engine::{BitwaveEngine, EngineConfig};
use bitwave::tensor::prelude::*;

fn main() -> Result<(), BitwaveError> {
    let engine = BitwaveEngine::new(EngineConfig::su1());

    // A small convolution, lowered to im2col and executed from compressed
    // weights; the engine checks the outputs against the reference kernel.
    let input = quantize_per_tensor(
        &ActivationGenerator::new(bitwave::tensor::synth::ActivationKind::Relu { std: 1.0 }, 3)
            .generate(Shape::feature_map(1, 16, 14, 14)),
        8,
    )?;
    let weights = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Laplacian { scale: 0.02 }, 4)
            .generate(Shape::conv_weight(32, 16, 3, 3)),
        8,
    )?;
    let (_, stats) = engine.run_conv_verified(&input, &weights, 1, 1)?;
    println!(
        "small conv      : {:>8} cycles ({:.2}x column-skip speedup, CR {:.2}x)",
        stats.compute_cycles,
        stats.column_skip_speedup(),
        stats.weight_compression_ratio()
    );

    // A BERT-like projection (dense weights): little to skip, CR near 1.
    let acts = quantize_per_tensor(
        &ActivationGenerator::new(
            bitwave::tensor::synth::ActivationKind::Gaussianlike { std: 1.0 },
            5,
        )
        .generate(Shape::d2(4, 768)),
        8,
    )?;
    let proj = quantize_per_tensor(
        &WeightGenerator::new(WeightDistribution::Gaussian { std: 0.03 }, 6)
            .generate(Shape::d2(64, 768)),
        8,
    )?;
    let (_, stats) = engine.run_linear_verified(&acts, &proj)?;
    println!(
        "dense projection: {:>8} cycles ({:.2}x column-skip speedup, CR {:.2}x)",
        stats.compute_cycles,
        stats.column_skip_speedup(),
        stats.weight_compression_ratio()
    );

    // The analytical-model validation the evaluation relies on.
    let report = validation_model_vs_simulator(&ExperimentContext::default())?;
    println!(
        "model vs simulator: {} cycles simulated, {:.0} cycles predicted, deviation {:.2}% (paper bound: 6%)",
        report.simulated_cycles,
        report.model_cycles,
        100.0 * report.deviation
    );
    Ok(())
}
