//! Cold vs. warm `search_model_weights` against one persistent store root.
//!
//! The per-layer design-space search memoizes results in the process-wide
//! DSE cache.  Attaching a store root makes those results **persistent**:
//! a restarted process (simulated here by dropping the cache's memory tier)
//! replays every layer's search from the checksummed disk tier instead of
//! re-enumerating thousands of candidate mappings.
//!
//! ```bash
//! cargo run --release --example warm_start
//! ```

use bitwave::context::ExperimentContext;
use bitwave::dnn::models::resnet18;
use bitwave::dse::memo::{global_cache, persist_global_cache};
use bitwave::pipeline::Pipeline;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("bitwave-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    persist_global_cache(&root)?;
    println!("store root: {}", root.display());

    let ctx = ExperimentContext::default().with_sample_cap(8_000);
    let net = resnet18();
    let weights = ctx.weights(&net);
    let pipeline = Pipeline::new(ctx);

    // Cold: every layer's mapping space is enumerated and evaluated, and
    // each winning result is written to `<root>/dse/<digest>`.
    let t0 = Instant::now();
    let cold = pipeline.search_model_weights(&net, &weights)?;
    let cold_elapsed = t0.elapsed();
    let cache = global_cache();
    println!(
        "cold search:  {cold_elapsed:>10.2?}   ({} layers, {} cold searches, {} on disk)",
        cold.layers.len(),
        cache.stats().misses(),
        cache.store().disk_entries(),
    );

    // Simulate a process restart: drop the memory tier, keep the disk tier.
    cache.clear();
    let misses_before_warm = cache.stats().misses();

    // Warm: every layer search replays from disk — no candidate is
    // re-evaluated, and the result is identical.
    let t1 = Instant::now();
    let warm = pipeline.search_model_weights(&net, &weights)?;
    let warm_elapsed = t1.elapsed();
    println!(
        "warm restart: {warm_elapsed:>10.2?}   ({} disk replays, {} re-searches)",
        cache.stats().disk_hits(),
        cache.stats().misses() - misses_before_warm,
    );

    assert_eq!(cold, warm, "disk replay must reproduce the search exactly");
    let ratio = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "speedup: {ratio:.1}x   (searched EDP gain over the heuristic: {:.3}x)",
        warm.edp_gain()
    );

    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
