//! Per-layer heuristic-vs-searched mapping comparison.
//!
//! Runs the `bitwave-dse` design-space exploration over two registry models
//! on the fully optimised BitWave accelerator — behind a throttled DRAM
//! interface, so the per-layer roofline `max(compute, dram)` is live — and
//! prints, for every layer, the Fig. 9 heuristic's pick next to the searched
//! winner with their EDPs, the winner's compute-vs-DRAM cycle split and a
//! `MEM`/`cmp` boundedness marker — the per-layer view behind `bench_dse`'s
//! end-to-end gate and the `POST /v1/search` endpoint.
//!
//! Run with: `cargo run --release --example dse_sweep`

use bitwave::accel::spec::{AcceleratorSpec, BitwaveOptimizations};
use bitwave::context::ExperimentContext;
use bitwave::dataflow::DramSpec;
use bitwave::dnn::models::by_name;
use bitwave::pipeline::Pipeline;
use bitwave::BitwaveError;

/// DRAM interface width of the sweep in bits per compute cycle — narrow
/// enough that the big weight-heavy layers pin to the DRAM side.
const DRAM_BANDWIDTH_BITS: usize = 64;

fn main() -> Result<(), BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(8_000);
    let mut accelerator = AcceleratorSpec::bitwave(BitwaveOptimizations::all());
    accelerator.dram = DramSpec::constrained(DRAM_BANDWIDTH_BITS);
    for model in ["resnet18", "mobilenet-v2"] {
        let spec = by_name(model)?;
        let weights = ctx.weights(&spec);
        let pipeline = Pipeline::new(ctx.clone()).with_accelerator(accelerator.clone());
        let search = pipeline.search_model_weights(&spec, &weights)?;

        println!(
            "== {model} on {} @ {DRAM_BANDWIDTH_BITS} DRAM bits/cycle ==",
            search.accelerator
        );
        println!(
            "{:<34} {:>14} {:>12} {:>14} {:>12} {:>7} {:>11} {:>11} {:>5}",
            "layer",
            "heuristic SU",
            "EDP",
            "searched SU",
            "EDP",
            "gain",
            "cyc compute",
            "cyc DRAM",
            "bound"
        );
        for layer in &search.layers {
            let h = &layer.heuristic;
            let s = &layer.search.winner;
            let memory_bound = s.cost.total_cycles > 0.0
                && s.cost.dram_cycles >= s.cost.total_cycles
                && s.cost.dram_cycles > s.cost.compute_cycles;
            println!(
                "{:<34} {:>14} {:>12.4e} {:>14} {:>12.4e} {:>6.2}x {:>11.4e} {:>11.4e} {:>5}",
                layer.layer,
                h.label,
                h.cost.edp,
                s.label,
                s.cost.edp,
                h.cost.edp / s.cost.edp,
                s.cost.compute_cycles,
                s.cost.dram_cycles,
                if memory_bound { "MEM" } else { "cmp" },
            );
        }
        println!(
            "{:<34} {:>14} {:>12.4e} {:>14} {:>12.4e} {:>6.2}x   \
             ({} candidate evaluations, {} memoized layer searches, \
             {} memory-bound winners)\n",
            "TOTAL (network)",
            "",
            search.heuristic_edp,
            "",
            search.searched_edp,
            search.edp_gain(),
            search
                .layers
                .iter()
                .map(|l| l.search.candidates)
                .sum::<usize>(),
            search.layers.len(),
            search.memory_bound_layers,
        );
    }
    Ok(())
}
