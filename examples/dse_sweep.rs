//! Per-layer heuristic-vs-searched mapping comparison.
//!
//! Runs the `bitwave-dse` design-space exploration over two registry models
//! on the fully optimised BitWave accelerator and prints, for every layer,
//! the Fig. 9 heuristic's pick next to the searched winner with their EDPs —
//! the per-layer view behind `bench_dse`'s end-to-end gate and the
//! `POST /v1/search` endpoint.
//!
//! Run with: `cargo run --release --example dse_sweep`

use bitwave::context::ExperimentContext;
use bitwave::dnn::models::by_name;
use bitwave::pipeline::Pipeline;
use bitwave::BitwaveError;

fn main() -> Result<(), BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(8_000);
    for model in ["resnet18", "mobilenet-v2"] {
        let spec = by_name(model)?;
        let weights = ctx.weights(&spec);
        let pipeline = Pipeline::new(ctx.clone());
        let search = pipeline.search_model_weights(&spec, &weights)?;

        println!("== {model} on {} ==", search.accelerator);
        println!(
            "{:<34} {:>14} {:>12} {:>14} {:>12} {:>7}",
            "layer", "heuristic SU", "EDP", "searched SU", "EDP", "gain"
        );
        for layer in &search.layers {
            let h = &layer.heuristic;
            let s = &layer.search.winner;
            println!(
                "{:<34} {:>14} {:>12.4e} {:>14} {:>12.4e} {:>6.2}x",
                layer.layer,
                h.label,
                h.cost.edp,
                s.label,
                s.cost.edp,
                h.cost.edp / s.cost.edp,
            );
        }
        println!(
            "{:<34} {:>14} {:>12.4e} {:>14} {:>12.4e} {:>6.2}x   \
             ({} candidate evaluations, {} memoized layer searches)\n",
            "TOTAL (network)",
            "",
            search.heuristic_edp,
            "",
            search.searched_edp,
            search.edp_gain(),
            search
                .layers
                .iter()
                .map(|l| l.search.candidates)
                .sum::<usize>(),
            search.layers.len(),
        );
    }
    Ok(())
}
