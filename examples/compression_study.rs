//! Reproduces the compression-oriented figures: the sparsity survey (Fig. 1),
//! the representation study (Fig. 4), the codec comparison (Fig. 5) and the
//! CR-vs-quality trade-off with its Pareto front (Fig. 6e–h).
//!
//! Run with: `cargo run --release --example compression_study`

use bitwave::context::ExperimentContext;
use bitwave::dnn::models::all_networks;
use bitwave::experiments::bitflip::{fig06_pareto, fig06_tradeoff};
use bitwave::experiments::sparsity::{
    fig01_sparsity_survey, fig04_bcs_representation, fig05_compression_ratio,
};

fn main() -> Result<(), bitwave::BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(30_000);

    println!("== Fig. 1: value sparsity vs bit sparsity ==");
    for row in fig01_sparsity_survey(&ctx)? {
        println!(
            "{:<12} value {:>5.1}%  bits(2C) {:>5.1}%  bits(SM) {:>5.1}%  SR(2C) {:>5.1}x  SR(SM) {:>5.1}x",
            row.network,
            100.0 * row.value_sparsity,
            100.0 * row.bit_sparsity_twos_complement,
            100.0 * row.bit_sparsity_sign_magnitude,
            row.speedup_ratio_twos_complement,
            row.speedup_ratio_sign_magnitude
        );
    }

    println!("\n== Fig. 4: bit-column sparsity, two's complement vs sign-magnitude (G=4) ==");
    let fig4 = fig04_bcs_representation(&ctx)?;
    println!(
        "{}: value {:.1}%  columns(2C) {:.1}%  columns(SM) {:.1}%  ({:.1}x improvement)",
        fig4.layer,
        100.0 * fig4.value_sparsity,
        100.0 * fig4.column_sparsity_twos_complement,
        100.0 * fig4.column_sparsity_sign_magnitude,
        fig4.sign_magnitude_improvement
    );

    println!("\n== Fig. 5: compression ratio on ResNet18's last four conv layers ==");
    for row in fig05_compression_ratio(&ctx)? {
        println!(
            "{:<4} {:<6} ideal {:>5.2}x   with index {:>5.2}x",
            row.codec,
            row.group_size.map(|g| format!("G={g}")).unwrap_or_default(),
            row.cr_ideal,
            row.cr_with_index
        );
    }

    println!("\n== Fig. 6(e-h): compression ratio vs quality ==");
    for net in all_networks() {
        let rows = fig06_tradeoff(&ctx, &net)?;
        println!("-- {} --", net.name);
        for row in &rows {
            println!(
                "  {:<16} {:<26} CR {:>5.2}x  quality {:>6.2}",
                row.method, row.configuration, row.compression_ratio, row.quality
            );
        }
        let front = fig06_pareto(&rows);
        println!("  Pareto front: {} points", front.len());
    }
    Ok(())
}
