//! Reproduces the paper's headline comparison (Figs. 13–17): BitWave against
//! Dense, Stripes, Pragmatic, SCNN, Bitlet and HUAA on the four benchmark
//! networks.
//!
//! Run with: `cargo run --release --example sota_comparison`

use bitwave::context::ExperimentContext;
use bitwave::experiments::evaluation::{
    fig13_speedup_breakdown, fig14_15_17_sota_comparison, fig16_energy_breakdown,
};

fn main() -> Result<(), bitwave::BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(20_000);

    println!("== Fig. 13: BitWave speedup breakdown (vs the Dense configuration) ==");
    let mut rows = fig13_speedup_breakdown(&ctx)?;
    rows.sort_by(|a, b| a.network.cmp(&b.network));
    for row in &rows {
        println!(
            "{:<12} {:<10} {:>6.2}x",
            row.network, row.step, row.speedup_vs_dense
        );
    }

    println!("\n== Fig. 14 / 15 / 17: SotA comparison (normalised as in the paper) ==");
    println!(
        "{:<12} {:<18} {:>14} {:>16} {:>18}",
        "network", "accelerator", "speedup/SCNN", "energy/BitWave", "efficiency/SCNN"
    );
    let mut rows = fig14_15_17_sota_comparison(&ctx)?;
    rows.sort_by_key(|r| (r.network.clone(), r.accelerator.clone()));
    for row in &rows {
        println!(
            "{:<12} {:<18} {:>13.2}x {:>15.2}x {:>17.2}x",
            row.network,
            row.accelerator,
            row.speedup_vs_scnn,
            row.energy_vs_bitwave,
            row.efficiency_vs_scnn
        );
    }

    println!("\n== Fig. 16: BitWave energy breakdown (fractions of total) ==");
    for row in fig16_energy_breakdown(&ctx)? {
        println!(
            "{:<12} compute {:>5.1}%  sram {:>5.1}%  reg {:>5.1}%  dram {:>5.1}%  (total {:.3} mJ)",
            row.network,
            100.0 * row.compute_fraction,
            100.0 * row.sram_fraction,
            100.0 * row.register_fraction,
            100.0 * row.dram_fraction,
            row.total_mj
        );
    }
    Ok(())
}
