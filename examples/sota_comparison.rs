//! Reproduces the paper's headline comparison (Figs. 13–17): BitWave against
//! Dense, Stripes, Pragmatic, SCNN, Bitlet and HUAA on the four benchmark
//! networks.
//!
//! Run with: `cargo run --release --example sota_comparison`
//!
//! Passing model names runs a focused comparison for just those models,
//! resolved through the `bitwave_dnn::models::by_name` registry (unknown
//! names exit non-zero and list the known ones):
//!
//! ```bash
//! cargo run --release --example sota_comparison -- resnet18 bert-base
//! ```

use bitwave::accel::spec::AcceleratorSpec;
use bitwave::context::ExperimentContext;
use bitwave::dnn::models::by_name;
use bitwave::experiments::evaluation::{
    fig13_speedup_breakdown, fig14_15_17_sota_comparison, fig16_energy_breakdown,
};
use bitwave::pipeline::Pipeline;

/// Focused mode: evaluate the named models on every registry accelerator,
/// preparing the compress/bit-flip prefix once per model and re-running only
/// the map + simulate suffix per machine.  As in the paper's comparison
/// (and `evaluate_all_accelerators`), only the full `BitWave+DF+SM+BF`
/// configuration sees bit-flipped weights; the dense reference, the SotA
/// baselines and the BitWave ablation steps evaluate the lossless weights.
fn compare_selected(
    ctx: &ExperimentContext,
    names: &[String],
) -> Result<(), bitwave::BitwaveError> {
    for name in names {
        let spec = by_name(name)?;
        let weights = ctx.weights(&spec);
        let lossless = Pipeline::new(ctx.clone()).prepare_with_weights(&spec, &weights)?;
        let flipped = Pipeline::new(ctx.clone())
            .with_default_bitflip(&spec)
            .prepare_with_weights(&spec, &weights)?;
        let dense = Pipeline::new(ctx.clone())
            .with_accelerator(AcceleratorSpec::by_name("dense")?)
            .simulate_prepared(&spec, &lossless)?;
        println!(
            "== {} ({} layers, {:.2} GFLOPs) — speedup vs Dense ==",
            spec.name,
            spec.layers.len(),
            spec.gflops()
        );
        for accel_name in AcceleratorSpec::REGISTRY_NAMES {
            let accelerator = AcceleratorSpec::by_name(accel_name)?;
            let prepared = if accelerator.bitwave_opts.bit_flip {
                &flipped
            } else {
                &lossless
            };
            let report = Pipeline::new(ctx.clone())
                .with_accelerator(accelerator)
                .simulate_prepared(&spec, prepared)?;
            println!(
                "{:<16} {:<18} {:>6.2}x   CR {:>5.2}x   {:>8.3} mJ",
                accel_name,
                report.accelerator,
                report.speedup_over(&dense),
                report.weight_compression_ratio,
                report.energy.total_mj()
            );
        }
        println!();
    }
    Ok(())
}

fn main() -> Result<(), bitwave::BitwaveError> {
    let ctx = ExperimentContext::default().with_sample_cap(20_000);

    let models: Vec<String> = std::env::args().skip(1).collect();
    if !models.is_empty() {
        return compare_selected(&ctx, &models).map_err(|e| {
            // Surface the registry's message (it lists the known names)
            // before the generic Debug dump of the propagated error.
            eprintln!("{e}");
            e
        });
    }

    println!("== Fig. 13: BitWave speedup breakdown (vs the Dense configuration) ==");
    let mut rows = fig13_speedup_breakdown(&ctx)?;
    rows.sort_by(|a, b| a.network.cmp(&b.network));
    for row in &rows {
        println!(
            "{:<12} {:<10} {:>6.2}x",
            row.network, row.step, row.speedup_vs_dense
        );
    }

    println!("\n== Fig. 14 / 15 / 17: SotA comparison (normalised as in the paper) ==");
    println!(
        "{:<12} {:<18} {:>14} {:>16} {:>18}",
        "network", "accelerator", "speedup/SCNN", "energy/BitWave", "efficiency/SCNN"
    );
    let mut rows = fig14_15_17_sota_comparison(&ctx)?;
    rows.sort_by_key(|r| (r.network.clone(), r.accelerator.clone()));
    for row in &rows {
        println!(
            "{:<12} {:<18} {:>13.2}x {:>15.2}x {:>17.2}x",
            row.network,
            row.accelerator,
            row.speedup_vs_scnn,
            row.energy_vs_bitwave,
            row.efficiency_vs_scnn
        );
    }

    println!("\n== Fig. 16: BitWave energy breakdown (fractions of total) ==");
    for row in fig16_energy_breakdown(&ctx)? {
        println!(
            "{:<12} compute {:>5.1}%  sram {:>5.1}%  reg {:>5.1}%  dram {:>5.1}%  (total {:.3} mJ)",
            row.network,
            100.0 * row.compute_fraction,
            100.0 * row.sram_fraction,
            100.0 * row.register_fraction,
            100.0 * row.dram_fraction,
            row.total_mj
        );
    }
    Ok(())
}
