//! Explores BitWave's dynamic dataflow: reproduces the Fig. 9 utilisation
//! study and shows the per-layer SU selection (Table I) for each benchmark
//! network.
//!
//! Run with: `cargo run --release --example dataflow_explorer`

use bitwave::context::ExperimentContext;
use bitwave::dataflow::mapping::map_network;
use bitwave::dataflow::SuSet;
use bitwave::dnn::models::all_networks;
use bitwave::experiments::hardware::{fig09_pe_utilization, table01_su_bandwidth};
use std::collections::BTreeMap;

fn main() {
    let ctx = ExperimentContext::default();

    println!("== Table I: BitWave spatial unrollings and bandwidths ==");
    for row in table01_su_bandwidth() {
        println!(
            "{:<4} [Cu={:<2} OXu={:<2} Ku={:<3} Gu={:<2}]  W BW {:>5} bit/cycle   Act BW {:>5} bit/cycle",
            row.su, row.unrolling[0], row.unrolling[1], row.unrolling[2], row.unrolling[3],
            row.weight_bw_bits, row.activation_bw_bits
        );
    }

    println!("\n== Fig. 9: PE utilisation of fixed SUs across workload cases ==");
    for row in fig09_pe_utilization(&ctx) {
        println!(
            "{:<34} {:<10} ({} lanes)  {:>5.1}%",
            row.case,
            row.su,
            row.array_lanes,
            100.0 * row.utilization
        );
    }

    println!("\n== Per-layer SU selection (dynamic dataflow) ==");
    for net in all_networks() {
        let decisions = map_network(&net.layers, &SuSet::bitwave()).expect("mappable network");
        let mut histogram: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &decisions {
            *histogram.entry(d.su.name).or_default() += 1;
        }
        let mean_util: f64 =
            decisions.iter().map(|d| d.utilization).sum::<f64>() / decisions.len() as f64;
        println!(
            "{:<12} mean utilisation {:>5.1}%   SU usage {:?}",
            net.name,
            100.0 * mean_util,
            histogram
        );
    }
}
