//! Reproduction harness root crate. See the `bitwave` facade crate for the API.
#![forbid(unsafe_code)]
pub use bitwave;
