//! Reproduction harness root crate. See the `bitwave` facade crate for the API.
pub use bitwave;
